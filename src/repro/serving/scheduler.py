"""Request coalescing for batched Monte-Carlo inference.

The batched MC engines (:meth:`repro.bayesian.BayesianCim.
forward_batched`, :meth:`repro.bayesian.SpinBayesNetwork.
forward_batched`) amortize the T-pass Monte-Carlo loop over one
stacked tensor; :class:`BatchScheduler` amortizes it over *requests*
as well.  Concurrent callers submit inputs of any size, the scheduler
concatenates them into one coalesced batch, runs a single batched MC
call, and hands each caller back its own slice of the predictive
distribution — the serving-side shape of the ROADMAP's "heavy
traffic" goal.

Coalescing changes nothing about a request's semantics: every MC pass
draws one mask bank shared across the whole coalesced batch, exactly
as a single ``mc_forward`` call over the concatenated inputs would
(and, under a fixed seed, exactly *bit-for-bit* that call).  Requests
may ask for their own sample count T; at flush time pending requests
are grouped by T and each group runs as one engine call, so the
invariant holds per group.

Flushes happen when the pending rows reach ``max_batch``, on an
explicit :meth:`BatchScheduler.flush` or ``result()`` call, or — when
``flush_interval`` is set — automatically once the oldest pending
request has waited that many seconds (the latency deadline of a
lightly-loaded service).

:class:`~repro.serving.sharded.ShardedScheduler` extends the flush
step to spread one coalesced batch across multiple engine replicas.

An attached :class:`~repro.serving.controlplane.ControlPlane` makes
the scheduler SLO-aware: submits pass admission control (bounded
queue, distinct :class:`~repro.serving.controlplane.AdmissionRejected`
error), and each flush group's T may be degraded under latency
pressure (adaptive-T; results carry ``served_samples``/``degraded``).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bayesian.base import PredictiveResult
from repro.serving.errors import ResultTimeout
from repro.serving.metrics import LoadMetrics

# Back-compat: ResultTimeout predates repro.serving.errors and was
# defined here through PR 9; importing it from this module keeps
# working.
__all__ = ["BatchScheduler", "PendingPrediction", "ResultTimeout",
           "SchedulerStats"]


@dataclasses.dataclass
class SchedulerStats:
    """Operational counters of one :class:`BatchScheduler`."""

    requests: int = 0
    rows: int = 0
    flushes: int = 0             # engine calls (one per T-group per flush)
    coalesced_rows: int = 0      # rows that shared a flush with another request
    evicted: int = 0             # unclaimed results dropped at the cap
    timer_flushes: int = 0       # flushes triggered by the deadline timer
    shard_calls: int = 0         # per-replica engine calls (sharded scheduler)
    timeouts: int = 0            # tickets abandoned by result(timeout=...)
    degraded_flushes: int = 0    # groups served below their requested T

    @property
    def mean_rows_per_flush(self) -> float:
        return self.rows / self.flushes if self.flushes else 0.0


@dataclasses.dataclass
class _Request:
    """One submitted request waiting for its flush.

    ``model_id`` names a :class:`~repro.serving.registry.ModelRegistry`
    entry; ``None`` means the scheduler's own default engine.
    """

    seq: int
    x: np.ndarray
    n_samples: int
    model_id: Optional[str] = None


class _FailedResult:
    """A flush-time engine failure, stored in a request's result slot.

    When an engine call raises, only the requests of that call fail:
    their slots hold the original exception (re-raised, traceback
    intact, when the ticket is resolved) while sibling requests from
    other T-groups or shards resolve normally.
    """

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


class PendingPrediction:
    """Handle for a submitted request; resolves on flush.

    ``result()`` returns the request's own :class:`PredictiveResult`
    (predictive mean probabilities, per-pass samples, and therefore
    every uncertainty score).  Calling it while the request is still
    pending forces a flush of the current pending batch.
    """

    def __init__(self, scheduler: "BatchScheduler", seq: int, n_rows: int,
                 n_samples: int, deadline: Optional[float] = None):
        self._scheduler = scheduler
        self._seq = seq
        self.n_rows = n_rows
        self.n_samples = n_samples
        # Absolute monotonic deadline from submit(deadline_s=...);
        # result() then defaults to waiting out the remaining budget.
        self._deadline = deadline

    def done(self) -> bool:
        """True once the request's flush has run (even if it failed)."""
        return self._scheduler._has_result(self._seq)

    def result(self, timeout: Optional[float] = None) -> PredictiveResult:
        """Return (once) this request's :class:`PredictiveResult`.

        With ``timeout=None`` (default) a still-pending request forces
        an immediate flush — unless the request was submitted with
        ``deadline_s=``, in which case the remaining deadline budget is
        used as the timeout.  With a timeout, the call instead *waits*
        for another flush trigger (the deadline timer, ``max_batch``,
        or a concurrent ``flush()``) to resolve the request — the
        polite form for a caller that wants batching to happen — and
        on expiry withdraws the request entirely (its queue slot is
        freed; it will not run) and raises :class:`ResultTimeout`.

        Raises
        ------
        ResultTimeout
            The timeout expired first (and on any retry of the same
            ticket).
        RuntimeError
            If the result was already consumed, or was evicted past
            ``max_retained_results``.
        Exception
            If the engine call serving this request raised, the
            original exception is re-raised with its traceback.
        """
        if timeout is None and self._deadline is not None:
            timeout = max(self._deadline - time.monotonic(), 1e-9)
        return self._scheduler._resolve(self._seq, timeout)


class BatchScheduler:
    """Coalesces concurrent inference requests into batched MC calls.

    Parameters
    ----------
    engine:
        Any object exposing ``mc_forward_batched(x, n_samples=...,
        chunk_passes=...) -> PredictiveResult`` — normally a
        :class:`~repro.bayesian.BayesianCim`,
        :class:`~repro.bayesian.SpinBayesNetwork`, or (for per-pixel
        workloads) a :class:`~repro.bayesian.SegmenterEngine`, whose
        results carry H·W rows per input image; construct the
        scheduler with ``feature_shape=(C, H, W)`` and each request
        gets back exactly its own pixels.
    n_samples:
        Default Monte-Carlo passes per request (the T of the
        predictive distribution); individual requests may override it
        via ``submit(x, n_samples=...)``.  At flush time pending
        requests are grouped by T, one engine call per distinct T.
    max_batch:
        Flush automatically once the pending rows reach this count.
        Requests larger than ``max_batch`` are accepted and flushed
        immediately rather than split (a request's rows always share
        one flush, so its samples stay mutually consistent).
    chunk_passes:
        Forwarded to the engine to bound peak memory.
    feature_shape:
        Per-sample input shape, e.g. ``(256,)`` or ``(1, 16, 16)``.
        When omitted it is inferred from the first request, which must
        then be 1-D features or a *batched* ``(n, features)`` matrix —
        a first request with more than two axes is rejected as
        ambiguous (a single ``(C, H, W)`` image is indistinguishable
        from a batch of 2-D inputs); pass ``feature_shape`` explicitly
        to serve image engines.
    max_retained_results:
        Bound on flushed-but-unclaimed results kept for late
        ``result()`` calls.  A long-lived scheduler whose callers
        abandon tickets (e.g. after timeouts) would otherwise grow
        without limit; beyond the cap the *oldest* unclaimed results
        are dropped (counted in ``stats.evicted``) and their tickets
        raise on ``result()``.
    flush_interval:
        Optional deadline in seconds: when set, a daemon timer flushes
        the pending batch once the *oldest* pending request has waited
        this long, bounding tail latency under light traffic.  Call
        :meth:`close` (or use the scheduler as a context manager) to
        cancel the timer on shutdown.
    registry:
        Optional :class:`~repro.serving.registry.ModelRegistry`.  When
        set, requests may name a registered model via ``submit(x,
        model=...)`` and one scheduler fleet serves every tenant:
        pending requests group by ``(model, T)``, each group runs on
        its own (lazily loaded) engine, and every group's flush is
        recorded in that model's :class:`~repro.serving.metrics.
        LoadMetrics`.  ``engine`` may then be ``None``, making every
        request name a model explicitly.
    default_model:
        Registry model-id used for requests that do not name a model.
        Requires ``registry``; mutually exclusive with ``engine``.
    metrics:
        Optional :class:`~repro.serving.metrics.LoadMetrics` fed one
        record per successful engine flush (with per-model windows on
        registry routes) plus queue-depth observations — giving the
        *sync* front-ends the observability the async front-end
        always had.  Defaults to the control plane's collector when
        one is attached.
    admission:
        Optional bounded-queue policy applied on every ``submit()``:
        an :class:`~repro.serving.controlplane.AdmissionPolicy` (or a
        prepared :class:`~repro.serving.controlplane.
        AdmissionController`) that rejects with
        :class:`~repro.serving.controlplane.AdmissionRejected` once
        pending rows cross its watermarks, instead of letting the
        queue grow without bound.  Defaults to the control plane's
        admission controller when one is attached.
    controlplane:
        Optional :class:`~repro.serving.controlplane.ControlPlane`
        binding this scheduler to SLO machinery: admission control on
        submit, adaptive-T degradation per flush group, and (for
        sharded schedulers) replica health quarantine.
    """

    def __init__(self, engine=None, n_samples: int = 20,
                 max_batch: int = 64,
                 chunk_passes: Optional[int] = None,
                 feature_shape: Optional[tuple] = None,
                 max_retained_results: int = 1024,
                 flush_interval: Optional[float] = None,
                 registry=None, default_model: Optional[str] = None,
                 metrics: Optional[LoadMetrics] = None,
                 admission=None, controlplane=None):
        if n_samples < 1:
            raise ValueError("need at least one MC sample")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_retained_results < 1:
            raise ValueError("max_retained_results must be positive")
        if flush_interval is not None and flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        if engine is None and registry is None:
            raise ValueError(
                "need an engine or a registry (or both) to serve from")
        if default_model is not None:
            if registry is None:
                raise ValueError("default_model requires a registry")
            if engine is not None:
                raise ValueError(
                    "pass either a default engine or a default_model, "
                    "not both")
        self.engine = engine
        self.registry = registry
        self.default_model = default_model
        self.n_samples = n_samples
        self.max_batch = max_batch
        self.chunk_passes = chunk_passes
        self.max_retained_results = max_retained_results
        self.flush_interval = flush_interval
        self.controlplane = controlplane
        if controlplane is not None:
            controlplane.bind(self)
            if metrics is None:
                metrics = controlplane.metrics
            if admission is None:
                admission = controlplane.admission
        self.metrics = metrics
        if admission is not None:
            from repro.serving.controlplane import (
                AdmissionController,
                AdmissionPolicy,
            )
            if isinstance(admission, AdmissionPolicy):
                admission = AdmissionController(admission)
            elif not hasattr(admission, "admit"):
                raise ValueError(
                    "admission must be an AdmissionController or an "
                    "AdmissionPolicy")
        self.admission = admission
        self.stats = SchedulerStats()
        self._lock = threading.RLock()
        # Signalled after every flush; result(timeout=...) waits on it
        # instead of force-flushing.
        self._cond = threading.Condition(self._lock)
        self._pending: List[_Request] = []
        self._pending_rows = 0
        # Rows served by each engine replica in the most recent engine
        # call ([total] for the single-engine scheduler; one entry per
        # replica for ShardedScheduler) — the load-metrics hook.
        self.last_shard_loads: List[int] = []
        # Values are PredictiveResult or _FailedResult slots.
        self._results: dict[int, object] = {}
        # Evicted seqs are remembered (insertion-ordered, bounded) so
        # their tickets raise a precise error; beyond the bound the
        # oldest degrade to the generic "already consumed" message
        # rather than growing memory forever.
        self._evicted_seqs: dict[int, None] = {}
        # Tickets withdrawn by result(timeout=...) — bounded like the
        # evicted set; retrying one re-raises ResultTimeout.
        self._timed_out_seqs: dict[int, None] = {}
        # Per-sample input shape, keyed by model-id (None = the
        # default engine / default_model route).  Shapes are pinned by
        # the constructor argument, by the registry entry, or inferred
        # from a route's first request.
        self._feature_shapes: Dict[Optional[str], tuple] = {}
        if feature_shape is not None:
            self._feature_shapes[None] = tuple(feature_shape)
        self._next_seq = 0
        self._timer: Optional[threading.Timer] = None
        self._closed = False

    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray,
               n_samples: Optional[int] = None,
               model: Optional[str] = None, *,
               feature_shape: Optional[tuple] = None,
               deadline_s: Optional[float] = None) -> PendingPrediction:
        """Enqueue a request: ``x`` is (n, …features) or (…features,).

        ``n_samples`` overrides the scheduler default for this request
        only.  ``model`` routes the request to a registered model
        (requires a ``registry``); omitted, it goes to the default
        engine or ``default_model``.  ``feature_shape`` pins the
        route's per-sample shape from the request (must agree with an
        already-pinned shape); ``deadline_s`` bounds how long the
        returned ticket's ``result()`` waits before withdrawing the
        request with :class:`~repro.serving.errors.ResultTimeout`.
        Returns a :class:`PendingPrediction` that resolves once the
        request's batch is flushed (automatically at ``max_batch``
        rows, after ``flush_interval`` seconds, or on :meth:`flush` /
        ``result()``).

        Raises
        ------
        ValueError
            For an empty request, a feature-shape mismatch, an
            ambiguous multi-dimensional first request without
            ``feature_shape``, a ``model`` without a registry,
            a non-positive ``deadline_s``, or ``n_samples < 1``.
        KeyError
            For a ``model`` the registry does not know.
        AdmissionRejected
            When an admission policy is attached and the request
            crosses its queue/latency watermarks (it is never
            enqueued).  Raised as :class:`~repro.serving.errors.
            QueueFull` or :class:`~repro.serving.errors.Overload`.
        """
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        with self._lock:
            x, n_samples, model_id = self._normalize_request(
                x, n_samples, model, feature_shape)
            if self.admission is not None:
                self.admission.admit(
                    x.shape[0], self._pending_rows, self._observed_p95)
            seq = self._next_seq
            self._next_seq += 1
            was_empty = not self._pending
            self._pending.append(_Request(seq, x, n_samples, model_id))
            self._pending_rows += x.shape[0]
            self.stats.requests += 1
            self.stats.rows += x.shape[0]
            if self.metrics is not None:
                self.metrics.observe_queue_depth(self._pending_rows)
            deadline = (time.monotonic() + deadline_s
                        if deadline_s is not None else None)
            ticket = PendingPrediction(self, seq, x.shape[0], n_samples,
                                       deadline)
            if self._pending_rows >= self.max_batch:
                self._flush_locked()
            elif was_empty and self.flush_interval is not None \
                    and not self._closed:
                self._arm_timer_locked()
            return ticket

    def _normalize_request(self, x: np.ndarray,
                           n_samples: Optional[int],
                           model: Optional[str] = None,
                           feature_shape: Optional[tuple] = None) -> tuple:
        """Validate one request; return its batched array, T, and
        model-id (``None`` for the default-engine route).

        Shared by the synchronous :meth:`submit` and the async
        front-end (:class:`~repro.serving.async_frontend.
        AsyncBatchScheduler`), so both enforce identical feature-shape
        inference, model routing, and per-request sample-count rules.
        Takes the scheduler lock (re-entrant) because it may fix a
        route's feature shape from its first request.
        """
        if n_samples is None:
            n_samples = self.n_samples
        if n_samples < 1:
            raise ValueError("need at least one MC sample")
        if model is None:
            model = self.default_model
        if model is not None and self.registry is None:
            raise ValueError(
                f"request names model {model!r} but the scheduler has "
                f"no registry")
        x = np.asarray(x, dtype=np.float64)
        with self._lock:
            if feature_shape is not None:
                # A per-request pin (the normalized submit signature):
                # fixes the route's shape on first use, and must agree
                # with an already-pinned one afterwards.
                pinned = tuple(feature_shape)
                known = self._feature_shapes.get(model)
                if known is None:
                    self._feature_shapes[model] = pinned
                elif known != pinned:
                    raise ValueError(
                        f"request pins feature_shape={pinned} but the "
                        f"route is already pinned to {known}")
            shape = self._feature_shapes.get(model)
            if shape is None and model is not None:
                # Raises KeyError for an unknown model — reject it at
                # submit time rather than at flush.
                shape = self.registry.feature_shape(model)
                if shape is not None:
                    self._feature_shapes[model] = shape
            if shape is None:
                if x.ndim > 2:
                    raise ValueError(
                        f"cannot infer the feature shape from a first "
                        f"request of shape {x.shape}: with multi-"
                        f"dimensional features a single (C, H, W) image "
                        f"is indistinguishable from a batch of 2-D "
                        f"inputs.  Construct the scheduler with "
                        f"feature_shape=, e.g. "
                        f"BatchScheduler(engine, feature_shape="
                        f"{tuple(x.shape[1:])}), or register the model "
                        f"with feature_shape=")
                if x.ndim < 2:
                    x = x[None]
                shape = x.shape[1:]
                self._feature_shapes[model] = shape
            elif x.shape == shape:
                x = x[None]          # single unbatched sample
            if x.shape[1:] != shape:
                raise ValueError(
                    f"request features {x.shape[1:]} != "
                    f"{'model ' + repr(model) if model else 'scheduler'}"
                    f" features {shape}")
            if x.shape[0] == 0:
                raise ValueError("empty request")
        return x, n_samples, model

    def flush(self) -> int:
        """Run batched MC over everything pending (one call per T).

        Returns the number of requests resolved (0 if nothing pending).
        """
        with self._lock:
            return self._flush_locked()

    @property
    def pending_rows(self) -> int:
        with self._lock:
            return self._pending_rows

    def close(self) -> None:
        """Flush any pending requests and cancel the deadline timer."""
        with self._lock:
            self._closed = True
            self._cancel_timer_locked()
            self._flush_locked()

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _arm_timer_locked(self) -> None:
        self._cancel_timer_locked()
        timer = threading.Timer(self.flush_interval, self._timer_fire)
        timer.daemon = True
        # The callback receives its own Timer so a stale firing (one
        # that was cancelled after its thread already woke up and is
        # waiting on the lock) can recognize it is no longer current
        # and must not flush a newer batch early.
        timer.args = (timer,)
        self._timer = timer
        timer.start()

    def _cancel_timer_locked(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _timer_fire(self, timer: threading.Timer) -> None:
        with self._lock:
            if self._timer is not timer:
                return
            self._timer = None
            if self._pending:
                self.stats.timer_flushes += 1
                self._flush_locked()

    # ------------------------------------------------------------------
    def _observed_p95(self) -> float:
        """p95 flush latency for admission decisions (0 if untracked)."""
        return self.metrics.p95_latency_s() if self.metrics is not None \
            else 0.0

    def _flush_locked(self) -> int:
        self._cancel_timer_locked()
        if not self._pending:
            return 0
        batch, self._pending = self._pending, []
        self._pending_rows = 0
        if self.metrics is not None:
            self.metrics.observe_queue_depth(0)
        for (model_id, n_samples), requests in \
                self._group_requests(batch).items():
            resolved = self._serve_group(requests, n_samples, model_id)
            self.stats.flushes += 1
            if len(requests) > 1:
                self.stats.coalesced_rows += sum(
                    r.x.shape[0] for r in requests)
            self._results.update(resolved)
        # Bound unclaimed-result retention (dicts iterate in insertion
        # order, so the front is the oldest flushed result).
        while len(self._results) > self.max_retained_results:
            oldest = next(iter(self._results))
            del self._results[oldest]
            self._evicted_seqs[oldest] = None
            self.stats.evicted += 1
        while len(self._evicted_seqs) > 4 * self.max_retained_results:
            del self._evicted_seqs[next(iter(self._evicted_seqs))]
        if self.controlplane is not None:
            self.controlplane.after_flush()
        self._cond.notify_all()
        return len(batch)

    def _serve_group(self, requests: List[_Request], requested_t: int,
                     model_id: Optional[str] = None) -> Dict[int, object]:
        """Run one (model, T)-group at its SLO-adjusted sample count.

        The control plane may shed MC passes under latency pressure
        (adaptive-T): the group then runs at ``served_t <
        requested_t`` and every resolved result is flagged
        ``degraded`` (``served_samples`` already carries the actual
        pass count).  Without a control plane — or with the p95 under
        target — the group runs exactly as requested, keeping results
        bit-identical to a plain scheduler.  Shared by the sync flush
        and the async front-end's executor flush.
        """
        served_t = requested_t
        if self.controlplane is not None:
            served_t = self.controlplane.served_t(requested_t)
        resolved = self._run_group_safe(requests, served_t, model_id)
        if served_t != requested_t:
            self.stats.degraded_flushes += 1
            for value in resolved.values():
                if isinstance(value, PredictiveResult):
                    value.degraded = True
        return resolved

    @staticmethod
    def _group_requests(batch: List[_Request]
                        ) -> Dict[Tuple[Optional[str], int],
                                  List[_Request]]:
        """Group a flush batch by ``(model, sample count)``.

        Each group is one engine call whose samples every member
        shares, exactly as a direct ``mc_forward_batched`` over the
        group's concatenated inputs — per-model T-grouping, so a
        mixed-tenant flush never blends two models' rows into one
        engine call.  Insertion-ordered (groups run in arrival order
        of their first member), so a seeded replay of the same
        submissions reproduces the engine-call sequence — the async
        front-end reuses this helper to keep that guarantee.
        """
        groups: Dict[Tuple[Optional[str], int], List[_Request]] = {}
        for request in batch:
            key = (request.model_id, request.n_samples)
            groups.setdefault(key, []).append(request)
        return groups

    def _run_group_safe(self, requests: List[_Request], n_samples: int,
                        model_id: Optional[str] = None
                        ) -> Dict[int, object]:
        """Run one (model, T)-group, converting an engine failure into
        :class:`_FailedResult` slots for exactly that group's
        requests — a poisoned engine must not wedge sibling groups
        (their tickets would otherwise stay pending forever).
        Registry-routed groups also feed their model's
        :class:`~repro.serving.metrics.LoadMetrics`, and every
        successful group feeds the scheduler's own ``metrics``
        collector (when attached) under its model-id window."""
        t0 = time.perf_counter()
        try:
            resolved = self._run_group(requests, n_samples, model_id)
        except Exception as exc:      # noqa: BLE001 — delivered to tickets
            return {r.seq: _FailedResult(exc) for r in requests}
        latency_s = time.perf_counter() - t0
        rows = sum(r.x.shape[0] for r in requests)
        if self.metrics is not None:
            self.metrics.record_flush(
                rows=rows, n_requests=len(requests), latency_s=latency_s,
                replica_loads=self.last_shard_loads, model_id=model_id)
        if model_id is not None and self.registry is not None:
            self.registry.record_flush(
                model_id, rows=rows, n_requests=len(requests),
                latency_s=latency_s)
        return resolved

    def _resolve_engine(self, model_id: Optional[str]):
        """The engine serving one group: the scheduler's own for the
        default route, else the registry's (lazily loaded)."""
        if model_id is None:
            if self.engine is None:
                raise ValueError(
                    "scheduler has no default engine; submit with "
                    "model=")
            return self.engine
        return self.registry.engine(model_id)

    def _run_group(self, requests: List[_Request], n_samples: int,
                   model_id: Optional[str] = None
                   ) -> Dict[int, PredictiveResult]:
        """One engine call over a same-(model, T) group; per-request
        slices."""
        engine = self._resolve_engine(model_id)
        coalesced = np.concatenate([r.x for r in requests], axis=0)
        self.last_shard_loads = [coalesced.shape[0]]
        result = engine.mc_forward_batched(
            coalesced, n_samples=n_samples, chunk_passes=self.chunk_passes)
        return self._slice_group(requests, result)

    @staticmethod
    def _slice_group(requests: List[_Request], result: PredictiveResult
                     ) -> Dict[int, PredictiveResult]:
        """Hand each request its own slice of the stacked samples.

        Engines may return more result rows than input rows — a
        segmentation engine yields H·W per-pixel rows per image (see
        :class:`repro.bayesian.SegmenterEngine`).  The expansion
        factor is uniform per engine, so each request's slice is its
        row span scaled by ``result_rows / input_rows``.
        """
        total_rows = sum(r.x.shape[0] for r in requests)
        out_rows = result.samples.shape[1]
        if out_rows % total_rows:
            raise ValueError(
                f"engine returned {out_rows} result rows for "
                f"{total_rows} input rows — not an integer per-input "
                f"expansion, so per-request slices are ambiguous")
        scale = out_rows // total_rows
        resolved: Dict[int, PredictiveResult] = {}
        lo = 0
        for request in requests:
            hi = lo + request.x.shape[0]
            resolved[request.seq] = PredictiveResult.from_samples(
                result.samples[:, lo * scale:hi * scale])
            lo = hi
        return resolved

    def _has_result(self, seq: int) -> bool:
        with self._lock:
            return seq in self._results

    def _resolve(self, seq: int,
                 timeout: Optional[float] = None) -> PredictiveResult:
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        with self._lock:
            if timeout is None:
                if seq not in self._results and any(
                        r.seq == seq for r in self._pending):
                    # Only force a flush when this ticket's request is
                    # genuinely still pending — resolving a consumed or
                    # evicted ticket must not disturb unrelated
                    # requests.
                    self._flush_locked()
            else:
                self._wait_for_result_locked(seq, timeout)
            if seq not in self._results:
                if seq in self._timed_out_seqs:
                    raise ResultTimeout(
                        f"request {seq} was withdrawn by an earlier "
                        f"result(timeout=...) expiry")
                if seq in self._evicted_seqs:
                    raise RuntimeError(
                        f"result for request {seq} was evicted: it "
                        f"stayed unclaimed past max_retained_results="
                        f"{self.max_retained_results}")
                raise RuntimeError(
                    f"result for request {seq} was already consumed "
                    f"(each ticket's result() can be taken once)")
            value = self._results.pop(seq)
        if isinstance(value, _FailedResult):
            # Re-raise the engine's original exception (traceback
            # intact) outside the lock.
            raise value.exc
        return value

    def _wait_for_result_locked(self, seq: int, timeout: float) -> None:
        """Wait (without forcing a flush) until ``seq`` resolves.

        Relies on the deadline timer / ``max_batch`` / concurrent
        ``flush()`` calls to run the batch; the condition variable is
        signalled after every flush.  On expiry the request is
        withdrawn from the pending batch — freeing its rows for
        ``max_batch`` and admission accounting immediately, rather
        than parking an unclaimed result for LRU eviction — and the
        caller raises :class:`ResultTimeout` via the ordinary
        missing-result path.
        """
        deadline = time.monotonic() + timeout
        while seq not in self._results:
            if not any(r.seq == seq for r in self._pending):
                return               # resolved+consumed, evicted, or gone
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for i, request in enumerate(self._pending):
                    if request.seq == seq:
                        del self._pending[i]
                        self._pending_rows -= request.x.shape[0]
                        if self.metrics is not None:
                            self.metrics.observe_queue_depth(
                                self._pending_rows)
                        if self.admission is not None:
                            # The withdrawn rows were admitted but will
                            # never be served — reconcile the counters
                            # so admitted totals don't drift.
                            self.admission.release(request.x.shape[0])
                        break
                self._timed_out_seqs[seq] = None
                while len(self._timed_out_seqs) > \
                        4 * self.max_retained_results:
                    del self._timed_out_seqs[
                        next(iter(self._timed_out_seqs))]
                self.stats.timeouts += 1
                return
            self._cond.wait(remaining)
