"""Request coalescing for batched Monte-Carlo inference.

The batched MC engine (:meth:`repro.bayesian.BayesianCim.
forward_batched`) amortizes the T-pass Monte-Carlo loop over one
stacked tensor; :class:`BatchScheduler` amortizes it over *requests*
as well.  Concurrent callers submit inputs of any size, the scheduler
concatenates them into one coalesced batch, runs a single batched MC
call, and hands each caller back its own slice of the predictive
distribution — the serving-side shape of the ROADMAP's "heavy
traffic" goal.

Coalescing changes nothing about a request's semantics: every MC pass
draws one mask bank shared across the whole coalesced batch, exactly
as a single ``mc_forward`` call over the concatenated inputs would
(and, under a fixed seed, exactly *bit-for-bit* that call).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import List, Optional

import numpy as np

from repro.bayesian.base import PredictiveResult


@dataclasses.dataclass
class SchedulerStats:
    """Operational counters of one :class:`BatchScheduler`."""

    requests: int = 0
    rows: int = 0
    flushes: int = 0
    coalesced_rows: int = 0      # rows that shared a flush with another request
    evicted: int = 0             # unclaimed results dropped at the cap

    @property
    def mean_rows_per_flush(self) -> float:
        return self.rows / self.flushes if self.flushes else 0.0


class PendingPrediction:
    """Handle for a submitted request; resolves on flush.

    ``result()`` returns the request's own :class:`PredictiveResult`
    (predictive mean probabilities, per-pass samples, and therefore
    every uncertainty score).  Calling it before the scheduler has
    flushed forces a flush of the current pending batch.
    """

    def __init__(self, scheduler: "BatchScheduler", seq: int, n_rows: int):
        self._scheduler = scheduler
        self._seq = seq
        self.n_rows = n_rows

    def done(self) -> bool:
        return self._scheduler._has_result(self._seq)

    def result(self) -> PredictiveResult:
        return self._scheduler._resolve(self._seq)


class BatchScheduler:
    """Coalesces concurrent inference requests into batched MC calls.

    Parameters
    ----------
    engine:
        Any object exposing ``mc_forward_batched(x, n_samples=...,
        chunk_passes=...) -> PredictiveResult`` — normally a
        :class:`~repro.bayesian.BayesianCim`.
    n_samples:
        Monte-Carlo passes per flush (the T of the predictive
        distribution every request receives).
    max_batch:
        Flush automatically once the pending rows reach this count.
        Requests larger than ``max_batch`` are accepted and flushed
        immediately rather than split (a request's rows always share
        one flush, so its samples stay mutually consistent).
    chunk_passes:
        Forwarded to the engine to bound peak memory.
    feature_shape:
        Per-sample input shape, e.g. ``(256,)`` or ``(1, 16, 16)``.
        When omitted it is inferred from the first request, which must
        then be *batched* ``(n, …features)`` — an unbatched first
        request is ambiguous for multi-dimensional features (a single
        ``(C, H, W)`` image is indistinguishable from a batch of 2-D
        inputs) and only a 1-D feature vector is auto-promoted.
    max_retained_results:
        Bound on flushed-but-unclaimed results kept for late
        ``result()`` calls.  A long-lived scheduler whose callers
        abandon tickets (e.g. after timeouts) would otherwise grow
        without limit; beyond the cap the *oldest* unclaimed results
        are dropped (counted in ``stats.evicted``) and their tickets
        raise on ``result()``.
    """

    def __init__(self, engine, n_samples: int = 20, max_batch: int = 64,
                 chunk_passes: Optional[int] = None,
                 feature_shape: Optional[tuple] = None,
                 max_retained_results: int = 1024):
        if n_samples < 1:
            raise ValueError("need at least one MC sample")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_retained_results < 1:
            raise ValueError("max_retained_results must be positive")
        self.engine = engine
        self.n_samples = n_samples
        self.max_batch = max_batch
        self.chunk_passes = chunk_passes
        self.max_retained_results = max_retained_results
        self.stats = SchedulerStats()
        self._lock = threading.RLock()
        self._pending: List[tuple[int, np.ndarray]] = []
        self._pending_rows = 0
        self._results: dict[int, PredictiveResult] = {}
        self._feature_shape: Optional[tuple] = (
            None if feature_shape is None else tuple(feature_shape))
        self._next_seq = 0

    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray) -> PendingPrediction:
        """Enqueue a request: ``x`` is (n, …features) or (…features,).

        Returns a :class:`PendingPrediction` that resolves once the
        request's batch is flushed (automatically at ``max_batch`` rows,
        or on :meth:`flush` / ``result()``).
        """
        x = np.asarray(x, dtype=np.float64)
        with self._lock:
            if self._feature_shape is None:
                if x.ndim < 2:
                    x = x[None]
                self._feature_shape = x.shape[1:]
            elif x.shape == self._feature_shape:
                x = x[None]          # single unbatched sample
            if x.shape[1:] != self._feature_shape:
                raise ValueError(
                    f"request features {x.shape[1:]} != scheduler "
                    f"features {self._feature_shape}")
            if x.shape[0] == 0:
                raise ValueError("empty request")
            seq = self._next_seq
            self._next_seq += 1
            self._pending.append((seq, x))
            self._pending_rows += x.shape[0]
            self.stats.requests += 1
            self.stats.rows += x.shape[0]
            ticket = PendingPrediction(self, seq, x.shape[0])
            if self._pending_rows >= self.max_batch:
                self._flush_locked()
            return ticket

    def flush(self) -> int:
        """Run one batched MC call over everything pending.

        Returns the number of requests resolved (0 if nothing pending).
        """
        with self._lock:
            return self._flush_locked()

    @property
    def pending_rows(self) -> int:
        with self._lock:
            return self._pending_rows

    # ------------------------------------------------------------------
    def _flush_locked(self) -> int:
        if not self._pending:
            return 0
        batch, self._pending = self._pending, []
        self._pending_rows = 0
        coalesced = np.concatenate([x for _, x in batch], axis=0)
        result = self.engine.mc_forward_batched(
            coalesced, n_samples=self.n_samples,
            chunk_passes=self.chunk_passes)
        self.stats.flushes += 1
        if len(batch) > 1:
            self.stats.coalesced_rows += coalesced.shape[0]
        lo = 0
        for seq, x in batch:
            hi = lo + x.shape[0]
            self._results[seq] = PredictiveResult.from_samples(
                result.samples[:, lo:hi])
            lo = hi
        # Bound unclaimed-result retention (dicts iterate in insertion
        # order, so the front is the oldest).
        while len(self._results) > self.max_retained_results:
            oldest = next(iter(self._results))
            del self._results[oldest]
            self.stats.evicted += 1
        return len(batch)

    def _has_result(self, seq: int) -> bool:
        with self._lock:
            return seq in self._results

    def _resolve(self, seq: int) -> PredictiveResult:
        with self._lock:
            if seq not in self._results:
                self._flush_locked()
            if seq not in self._results:
                # Every submitted request lands in _results at its
                # flush; a missing entry means it was taken or evicted.
                raise RuntimeError(
                    f"result for request {seq} was already consumed "
                    f"or evicted (max_retained_results="
                    f"{self.max_retained_results})")
            return self._results.pop(seq)
