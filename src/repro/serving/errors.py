"""One home for every serving-surface exception, and the ticket
lifecycle those exceptions punctuate.

Before this module each front-end raised its own spelling of the same
failures (:class:`AdmissionRejected` lived in ``controlplane``,
:class:`ResultTimeout` in ``scheduler``); clients handling both had to
import from two modules and switch on a string ``reason``.  Every
front-end — :class:`~repro.serving.scheduler.BatchScheduler`,
:class:`~repro.serving.sharded.ShardedScheduler`,
:class:`~repro.serving.async_frontend.AsyncBatchScheduler`, the
process pool, and the unified :func:`repro.serving.api.serve`
factory — now raises the types defined here (the old import paths
keep working as re-exports).

Ticket lifecycle
----------------
Every ``submit(x, ...)`` follows the same state machine on every
front-end:

1. **Admission** — with an admission policy attached, the request is
   checked against the queue watermarks *before* it is enqueued.  A
   hard-bound breach raises :class:`QueueFull`; a soft-watermark breach
   under latency pressure raises :class:`Overload` (both are
   :class:`AdmissionRejected`, so ``except AdmissionRejected`` catches
   either).  A rejected request holds no rows and needs no cleanup.
2. **Pending** — the request joins the coalescing batch and counts
   against ``max_batch`` (and, on the async front-end, the
   backpressure bound).  A ticket (:class:`~repro.serving.scheduler.
   PendingPrediction` / :class:`~repro.serving.async_frontend.
   AsyncPrediction`) is returned immediately.
3. **Flushed** — at ``max_batch`` rows, at the deadline, or on an
   explicit ``flush()``, the batch runs as one engine call per
   (model, T) group.  An engine failure fails only that group's
   tickets, which re-raise the original exception on resolution.
4. **Resolved / abandoned** — ``result()`` hands back the request's
   own :class:`~repro.bayesian.base.PredictiveResult` exactly once.
   A bounded wait that expires withdraws the request (its rows are
   freed) and raises :class:`ResultTimeout`; a cancelled async ticket
   releases its backpressure slot and reconciles its admission
   accounting (see :meth:`~repro.serving.controlplane.
   AdmissionController.release`).
"""

from __future__ import annotations


class AdmissionRejected(RuntimeError):
    """A request refused by admission control (never enqueued).

    ``reason`` is ``"queue_full"`` (hard bound) or ``"overload"``
    (soft watermark + latency breach) — distinct from engine errors,
    so clients can back off instead of retrying into the same wall.
    Raised as one of the two subclasses below; catching this base
    type handles both.
    """

    def __init__(self, message: str, reason: str):
        super().__init__(message)
        self.reason = reason


class QueueFull(AdmissionRejected):
    """The hard queue bound was hit: pending rows + the request would
    exceed ``max_queue_rows``.  Back off and retry later."""

    def __init__(self, message: str, reason: str = "queue_full"):
        super().__init__(message, reason)


class Overload(AdmissionRejected):
    """The request was shed: the queue is past its soft watermark
    *while* the observed p95 flush latency is over target.  Reduce
    offered load (or request fewer MC passes) before retrying."""

    def __init__(self, message: str, reason: str = "overload"):
        super().__init__(message, reason)


class ResultTimeout(RuntimeError):
    """``result(timeout=...)`` expired before the request resolved.

    The ticket's pending slot is released on the way out: the request
    is withdrawn from the batch (it will not run) and its rows no
    longer count against ``max_batch``/admission watermarks, instead
    of lingering for ``max_retained_results`` LRU eviction.  Retrying
    the same ticket re-raises this error.
    """


class WorkerDied(RuntimeError):
    """A process-pool replica's worker is gone (crash, kill, or OOM).

    Raised by :class:`~repro.serving.procpool.ProcReplica` calls after
    the worker process died mid-request or between requests.  Under a
    sharded scheduler this fails only the dead replica's own shard
    (sibling tickets resolve normally) and, with a control plane
    attached, flows through the ordinary failure path: the replica is
    quarantined and a warm spare promoted in its place.
    """


class RemoteEngineError(RuntimeError):
    """An engine call raised *inside* a process-pool worker.

    The worker survives (only the request failed); the remote
    traceback is carried in the message.  The original exception type
    cannot always cross the process boundary (exceptions are not
    required to pickle), so this wrapper is what the ticket re-raises.
    """


__all__ = [
    "AdmissionRejected",
    "Overload",
    "QueueFull",
    "RemoteEngineError",
    "ResultTimeout",
    "WorkerDied",
]
