"""Async serving front-end over the batch schedulers.

:class:`AsyncBatchScheduler` is the third front-end over the request
coalescing machinery (after the synchronous
:class:`~repro.serving.scheduler.BatchScheduler` and the threaded
:class:`~repro.serving.sharded.ShardedScheduler`): it drives either
of them from an :mod:`asyncio` event loop.

- ``await submit(x)`` / ``await predict(x)`` coroutines replace the
  blocking ticket API; results arrive as resolved futures — no
  polling, and no ``result()``-forced flushes.
- Deadline flushes are scheduled with ``loop.call_later`` instead of
  the synchronous scheduler's timer thread, so an idle service holds
  zero extra threads.
- Engine calls run on a worker thread (``run_in_executor``); the
  event loop never blocks on Monte-Carlo math.  Flushes are
  serialized in submission order, which keeps the engine-call
  sequence — and therefore every result — bit-for-bit identical to
  the synchronous scheduler fed the same requests.
- Backpressure: the queue is bounded by ``max_pending_rows`` rows
  (queued *plus* in-flight).  ``await submit`` suspends when the
  bound is hit and resumes as capacity frees; a cancelled request
  releases its rows immediately.
- Observability and scaling: every flush feeds a
  :class:`~repro.serving.metrics.LoadMetrics` collector, and an
  optional :class:`~repro.serving.autoscale.Autoscaler` is stepped
  after each flush, growing/shrinking a sharded inner scheduler's
  replica set under load.

The inner scheduler is used purely as the *flush engine* (its
validation, grouping, sharding, and error-isolation hooks); its own
pending queue, deadline timer, and retained-result cache stay empty.
Do not submit to it directly while an async front-end owns it.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional

from repro.bayesian.base import PredictiveResult
from repro.serving.autoscale import Autoscaler
from repro.serving.errors import ResultTimeout
from repro.serving.metrics import LoadMetrics
from repro.serving.scheduler import (
    BatchScheduler,
    SchedulerStats,
    _FailedResult,
    _Request,
)


class AsyncPrediction:
    """Awaitable handle for one submitted async request.

    ``await ticket`` (or ``await ticket.result()``) yields the
    request's :class:`~repro.bayesian.base.PredictiveResult`, raising
    the engine's original exception if its flush failed.
    :meth:`cancel` abandons a queued request and frees its
    backpressure slot immediately.  A ``deadline_s`` passed at submit
    bounds :meth:`result`: past it the request is cancelled and
    :class:`~repro.serving.errors.ResultTimeout` raised — the same
    error type the sync ticket uses.
    """

    __slots__ = ("_future", "n_rows", "n_samples", "_deadline")

    def __init__(self, future: "asyncio.Future", n_rows: int,
                 n_samples: int, deadline: Optional[float] = None):
        self._future = future
        self.n_rows = n_rows
        self.n_samples = n_samples
        self._deadline = deadline          # absolute loop time, or None

    def done(self) -> bool:
        """True once resolved (result, failure, or cancellation)."""
        return self._future.done()

    def cancel(self) -> bool:
        """Cancel the request; returns ``False`` if already resolved.

        A still-queued request is dropped from the pending batch and
        its rows are released to waiting submitters.  A request whose
        flush is already running cannot be recalled from the engine;
        its slot is released anyway and the computed slice discarded.
        """
        return self._future.cancel()

    async def result(self) -> PredictiveResult:
        """Wait for and return this request's predictive result.

        Raises
        ------
        ResultTimeout
            The submit-time ``deadline_s`` expired first; the request
            is cancelled (its backpressure slot freed, its admission
            accounting reconciled).
        asyncio.CancelledError
            If the ticket was cancelled.
        Exception
            The original engine exception, if the flush serving this
            request failed.
        """
        if self._deadline is None:
            return await self._future
        loop = asyncio.get_running_loop()
        remaining = self._deadline - loop.time()
        try:
            return await asyncio.wait_for(
                asyncio.shield(self._future), max(remaining, 1e-9))
        except asyncio.TimeoutError:
            self._future.cancel()
            raise ResultTimeout(
                "request missed its deadline_s and was withdrawn"
            ) from None

    def __await__(self):
        return self._future.__await__()


class AsyncBatchScheduler:
    """Asyncio front-end coalescing requests over a sync scheduler.

    Parameters
    ----------
    scheduler:
        The flush engine: a :class:`~repro.serving.scheduler.
        BatchScheduler` or :class:`~repro.serving.sharded.
        ShardedScheduler` (the latter adds replica fan-out and is
        what the autoscaler controls).  Its ``max_batch``,
        ``feature_shape``, and per-request ``n_samples`` semantics
        apply unchanged.
    flush_interval:
        Deadline in seconds for the oldest queued request, enforced
        with ``loop.call_later`` (no timer thread).  When ``None``
        (default), the front-end flushes on the *next loop tick*
        instead (``loop.call_soon``): every submit made in the
        current tick — e.g. a ``gather`` of concurrent ``predict``
        calls — still coalesces into one flush, and an awaited
        prediction can never hang waiting for traffic that isn't
        coming.  Set a real interval to trade latency for larger
        batches under staggered arrivals.
    max_pending_rows:
        Backpressure bound on queued + in-flight rows; ``await
        submit`` suspends beyond it.  Defaults to ``4 * max_batch``.
        A request larger than the bound is accepted when the queue is
        idle (mirroring the oversized-request rule of ``max_batch``).
    metrics:
        Load collector fed by every flush; created automatically when
        omitted.
    autoscaler:
        Optional replica policy, stepped after each flush with the
        live queue depth.  When it lacks a metrics source it adopts
        this front-end's collector.
    executor:
        Worker pool for engine calls; defaults to a private
        single-thread pool (flushes are serialized anyway — see the
        bit-exactness note in the module docstring).

    Raises
    ------
    ValueError
        For a non-positive ``flush_interval`` or
        ``max_pending_rows``.
    """

    def __init__(self, scheduler: BatchScheduler, *,
                 flush_interval: Optional[float] = None,
                 max_pending_rows: Optional[int] = None,
                 metrics: Optional[LoadMetrics] = None,
                 autoscaler: Optional[Autoscaler] = None,
                 executor: Optional[ThreadPoolExecutor] = None):
        if flush_interval is not None and flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        if max_pending_rows is None:
            max_pending_rows = 4 * scheduler.max_batch
        if max_pending_rows < 1:
            raise ValueError("max_pending_rows must be positive")
        self.scheduler = scheduler
        self.max_batch = scheduler.max_batch
        self.flush_interval = flush_interval
        self.max_pending_rows = max_pending_rows
        if metrics is None and autoscaler is not None \
                and autoscaler.metrics is not None:
            metrics = autoscaler.metrics     # share one collector
        self.metrics = metrics if metrics is not None else LoadMetrics()
        self.autoscaler = autoscaler
        if autoscaler is not None and autoscaler.metrics is None:
            autoscaler.metrics = self.metrics
        self.stats = SchedulerStats()
        self._own_executor = executor is None
        self._executor = executor if executor is not None else \
            ThreadPoolExecutor(max_workers=1, thread_name_prefix="mc-flush")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._flush_lock: Optional[asyncio.Lock] = None
        self._pending: List[_Request] = []
        self._pending_rows = 0
        self._used_rows = 0                      # queued + in-flight
        self._futures: Dict[int, asyncio.Future] = {}
        self._waiters: Deque[asyncio.Future] = deque()
        self._flush_tasks: set = set()
        self._background: set = set()            # spare replenishment
        self._deadline_handle: Optional[asyncio.TimerHandle] = None
        self._idle_handle: Optional[asyncio.Handle] = None
        self._next_seq = 0
        self._closed = False
        # A failing autoscaler policy (e.g. an engine factory that
        # raises) must not take serving down; the last error is kept
        # here for inspection instead.
        self.last_autoscale_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    @property
    def pending_rows(self) -> int:
        """Rows queued for the next flush."""
        return self._pending_rows

    @property
    def in_flight_rows(self) -> int:
        """Rows admitted past backpressure but not yet resolved."""
        return self._used_rows - self._pending_rows

    def _bind_loop(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._flush_lock = asyncio.Lock()
        elif loop is not self._loop:
            raise RuntimeError(
                "AsyncBatchScheduler is bound to one event loop; create "
                "a new front-end per loop")
        return loop

    # ------------------------------------------------------------------
    async def submit(self, x, n_samples: Optional[int] = None,
                     model: Optional[str] = None, *,
                     feature_shape: Optional[tuple] = None,
                     deadline_s: Optional[float] = None) -> AsyncPrediction:
        """Enqueue a request; suspends under backpressure.

        ``x`` is ``(n, …features)`` or a single ``(…features,)``
        sample; ``n_samples`` overrides the scheduler default for
        this request only; ``model`` routes to a registered model of
        the inner scheduler's registry (grouped by (model, T) at
        flush, like the sync front-ends); ``feature_shape`` pins the
        route's per-sample shape; ``deadline_s`` bounds the ticket's
        ``result()`` wait (expiry cancels the request and raises
        :class:`~repro.serving.errors.ResultTimeout`).  Returns an
        awaitable :class:`AsyncPrediction`.

        Raises
        ------
        RuntimeError
            After :meth:`aclose`, or when called from a different
            event loop than the first call.
        ValueError
            For the same invalid requests :meth:`BatchScheduler.
            submit` rejects.
        AdmissionRejected
            When the inner scheduler carries an admission controller
            and this request trips its queue bound or overload
            watermark.  The check runs *before* the backpressure
            wait: a rejected request fails fast instead of queueing
            behind the very backlog that triggered the rejection.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        loop = self._bind_loop()
        x, n_samples, model_id = self.scheduler._normalize_request(
            x, n_samples, model, feature_shape)
        rows = x.shape[0]
        if self.scheduler.admission is not None:
            self.scheduler.admission.admit(
                rows, self._pending_rows,
                p95_supplier=self.metrics.p95_latency_s)
        await self._acquire_rows(rows)
        if self._closed:                 # closed while suspended
            self._release_rows(rows)
            raise RuntimeError("scheduler is closed")
        seq = self._next_seq
        self._next_seq += 1
        future: asyncio.Future = loop.create_future()
        self._futures[seq] = future
        self._pending.append(_Request(seq, x, n_samples, model_id))
        self._pending_rows += rows
        self.stats.requests += 1
        self.stats.rows += rows
        future.add_done_callback(
            lambda f, seq=seq, rows=rows: self._on_request_done(seq, rows))
        self.metrics.observe_queue_depth(self._pending_rows)
        if self._pending_rows >= self.max_batch:
            self._start_flush()
        elif self.flush_interval is not None:
            if self._deadline_handle is None:
                self._deadline_handle = loop.call_later(
                    self.flush_interval, self._deadline_fire)
        elif self._idle_handle is None:
            # No deadline configured: flush when the loop finishes
            # the current tick, after every concurrently-scheduled
            # submit has joined the batch.
            self._idle_handle = loop.call_soon(self._idle_fire)
        deadline = (loop.time() + deadline_s if deadline_s is not None
                    else None)
        return AsyncPrediction(future, rows, n_samples, deadline)

    async def predict(self, x, n_samples: Optional[int] = None,
                      model: Optional[str] = None) -> PredictiveResult:
        """Submit one request and wait for its predictive result.

        Equivalent to ``await (await submit(x, n_samples, model))``;
        raises whatever :meth:`submit` or the ticket would raise.

        The wait resolves when a flush runs — at ``max_batch`` rows,
        at the ``flush_interval`` deadline (or the next loop tick
        when no deadline is configured), or on an explicit
        :meth:`flush`.  Unlike the synchronous ticket's ``result()``,
        awaiting never *forces* a flush: concurrent ``predict`` calls
        coalesce instead of racing each other's batches.
        """
        ticket = await self.submit(x, n_samples=n_samples, model=model)
        return await ticket.result()

    async def flush(self) -> int:
        """Flush everything pending and wait for it to resolve.

        Returns the number of requests flushed by *this* call.
        """
        self._bind_loop()
        n_requests = len(self._pending)
        task = self._start_flush()
        if task is not None:
            await task
        return n_requests

    async def drain(self) -> None:
        """Wait until every queued and in-flight request resolves.

        Requests submitted *while* draining are flushed and awaited
        too (the loop re-checks the queue), so under continuous
        traffic this only returns at a genuine gap.
        """
        self._bind_loop()
        while self._pending or self._flush_tasks:
            self._start_flush()
            if self._flush_tasks:
                await asyncio.gather(*list(self._flush_tasks),
                                     return_exceptions=True)

    async def aclose(self) -> None:
        """Flush pending work, then release timers/executors.

        Safe to call twice.  Submitters still suspended on
        backpressure are woken and fail with ``RuntimeError``.
        """
        if self._closed:
            return
        self._closed = True
        if self._loop is not None:
            self._cancel_deadline()
            while self._pending or self._flush_tasks or self._background:
                self._start_flush()
                await asyncio.gather(*list(self._flush_tasks),
                                     *list(self._background),
                                     return_exceptions=True)
            self._wake_waiters()
        if self._own_executor:
            self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "AsyncBatchScheduler":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    async def _acquire_rows(self, rows: int) -> None:
        """Suspend until ``rows`` fit under ``max_pending_rows``.

        An oversized request is admitted once the queue is completely
        idle, so it can never deadlock.  FIFO-fair: wakeups re-check
        in arrival order.
        """
        loop = self._bind_loop()
        while self._used_rows > 0 \
                and self._used_rows + rows > self.max_pending_rows:
            waiter: asyncio.Future = loop.create_future()
            self._waiters.append(waiter)
            try:
                await waiter
            finally:
                if not waiter.done():
                    waiter.cancel()
                try:
                    self._waiters.remove(waiter)
                except ValueError:
                    pass
        self._used_rows += rows

    def _release_rows(self, rows: int) -> None:
        self._used_rows -= rows
        self._wake_waiters()

    def _wake_waiters(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)

    def _on_request_done(self, seq: int, rows: int) -> None:
        """Done-callback of every request future (fires exactly once:
        result, failure, or cancellation) — the single place a
        request's backpressure slot is released."""
        future = self._futures.pop(seq, None)
        if future is not None and future.cancelled():
            # Still queued?  Drop it so the flush skips the work.
            for i, request in enumerate(self._pending):
                if request.seq == seq:
                    del self._pending[i]
                    self._pending_rows -= rows
                    self.metrics.observe_queue_depth(self._pending_rows)
                    break
            # The admission controller booked this request's rows at
            # submit.  A cancellation — *including* one that lands
            # after the flush already started running the batch — means
            # those rows were never served; without this release the
            # admitted counters drift up by every cancelled request.
            if self.scheduler.admission is not None:
                self.scheduler.admission.release(rows)
        self._release_rows(rows)

    # ------------------------------------------------------------------
    def _deadline_fire(self) -> None:
        self._deadline_handle = None
        if self._pending:
            self.stats.timer_flushes += 1
            self._start_flush()

    def _idle_fire(self) -> None:
        self._idle_handle = None
        if self._pending:
            self._start_flush()

    def _cancel_deadline(self) -> None:
        if self._deadline_handle is not None:
            self._deadline_handle.cancel()
            self._deadline_handle = None
        if self._idle_handle is not None:
            self._idle_handle.cancel()
            self._idle_handle = None

    def _start_flush(self) -> Optional["asyncio.Task"]:
        """Detach the pending batch into a serialized flush task."""
        self._cancel_deadline()
        if not self._pending:
            return None
        batch, self._pending = self._pending, []
        self._pending_rows = 0
        self.metrics.observe_queue_depth(0)
        task = self._loop.create_task(self._flush_task(batch))
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)
        return task

    async def _flush_task(self, batch: List[_Request]) -> None:
        """One flush: engine work on the executor, then resolution.

        The async lock serializes engine calls across overlapping
        flushes — replica engines hold RNG state, and the sequential
        call order is what makes results bit-identical to the sync
        scheduler.
        """
        async with self._flush_lock:
            try:
                resolved = await self._loop.run_in_executor(
                    self._executor, self._run_flush, batch)
            except Exception as exc:     # noqa: BLE001 — defensive
                resolved = {r.seq: _FailedResult(exc) for r in batch}
            for request in batch:
                future = self._futures.get(request.seq)
                if future is None or future.done():
                    continue             # cancelled mid-flight
                value = resolved.get(request.seq)
                if isinstance(value, _FailedResult):
                    future.set_exception(value.exc)
                elif value is None:
                    future.set_exception(RuntimeError(
                        f"flush produced no result for request "
                        f"{request.seq}"))
                else:
                    future.set_result(value)
            self._autoscale_step()

    def _run_flush(self, batch: List[_Request]) -> Dict[int, object]:
        """Executor-side flush body: group by (model, T), reuse the
        sync scheduler's engine/sharding/registry/control-plane hooks
        (``_serve_group`` applies adaptive-T degradation and flags
        degraded results), feed the metrics — filed under each group's
        model-id, so a multi-tenant fleet keeps per-model latency
        windows instead of pooling every tenant into one p95."""
        scheduler = self.scheduler
        resolved: Dict[int, object] = {}
        for (model_id, n_samples), requests in \
                scheduler._group_requests(batch).items():
            rows = sum(r.x.shape[0] for r in requests)
            t0 = time.perf_counter()
            resolved.update(
                scheduler._serve_group(requests, n_samples, model_id))
            latency = time.perf_counter() - t0
            self.stats.flushes += 1
            if len(requests) > 1:
                self.stats.coalesced_rows += rows
            if self.metrics is not scheduler.metrics:
                # The inner scheduler feeds its own collector (the
                # control plane's) inside _run_group_safe; recording
                # here too would double-count a shared object.
                self.metrics.record_flush(
                    rows=rows, n_requests=len(requests), latency_s=latency,
                    replica_loads=scheduler.last_shard_loads,
                    model_id=model_id)
        if scheduler.controlplane is not None:
            # Same housekeeping the sync flush runs: warm-spare
            # promotion for replicas quarantined during this flush.
            scheduler.controlplane.after_flush()
        return resolved

    def _autoscale_step(self) -> None:
        """Step the autoscaler between flushes (loop thread, flush
        lock held — no engine call can race the replica mutation)."""
        if self.autoscaler is None or self._closed:
            return
        try:
            delta = self.autoscaler.step(queue_rows=self._pending_rows)
        except Exception as exc:         # noqa: BLE001 — see attribute
            self.last_autoscale_error = exc
            return
        if delta > 0 and self.autoscaler.spare_count == 0:
            # Rebuild the warm spare off the hot path: the default
            # executor, not the (serialized) flush worker.
            future = self._loop.run_in_executor(
                None, self.autoscaler.replenish_spares)
            self._background.add(future)
            future.add_done_callback(self._background.discard)
