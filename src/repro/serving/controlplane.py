"""SLO-driven control plane: quarantine, admission, adaptive-T.

The schedulers (:mod:`repro.serving.scheduler` and friends) make the
fleet *fast*; this module makes it *predictable when things break*.
A :class:`ControlPlane` attached to a scheduler closes three loops:

**Replica health** (:class:`HealthPolicy` / :class:`ReplicaHealth`).
Every shard call of a :class:`~repro.serving.sharded.ShardedScheduler`
reports its outcome per replica.  ``quarantine_after`` *consecutive*
failures quarantine a replica: it stops receiving shards, while an
attached :class:`~repro.serving.autoscale.Autoscaler` promotes a warm
spare to replace the lost capacity.  After an exponentially backed-off
probe delay the replica re-enters on *probation* — it serves traffic
again, a failure re-quarantines it with doubled backoff, and
``probation_successes`` clean flushes re-admit it as healthy.  If
every replica is quarantined the filter falls back to the full set:
availability beats hygiene.

**Admission control** (:class:`AdmissionPolicy`).  ``submit()`` is
checked against the pending queue before a request is enqueued: past
``max_queue_rows`` it is rejected with :class:`AdmissionRejected`
(reason ``queue_full``); past the soft ``shed_queue_rows`` watermark
*while* the p95 flush latency is above ``shed_p95_s`` it is shed
(reason ``overload``).  This replaces the sync path's previously
unbounded queue growth with a distinct, immediately-diagnosable error.

**Adaptive-T degradation** (:class:`SloPolicy`).  The system's
uncertainty-native twist: under overload it can legitimately serve
*fewer Monte-Carlo passes with a wider credible interval* instead of
dropping traffic.  At flush time each (model, T)-group's requested T
is scaled by ``target_p95_s / observed_p95`` (floored at ``t_min``,
ceilinged at the request's own T), so latency pressure degrades
uncertainty resolution, not availability.  Every result reports the
T actually served (``served_samples``) and a ``degraded`` flag; when
the p95 recovers under target the multiplier returns to 1 and results
are bit-identical to a control-plane-less scheduler.

All state transitions take an injectable monotonic clock, so every
loop is deterministic under test.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

from repro.serving.errors import (
    AdmissionRejected,
    Overload,
    QueueFull,
)
from repro.serving.metrics import LoadMetrics, _percentile


@dataclasses.dataclass
class AdmissionPolicy:
    """Bounded-queue policy evaluated on every ``submit()``.

    ``max_queue_rows``: hard cap on pending rows — a request that
    would push past it is rejected outright.  ``shed_queue_rows``:
    optional soft watermark; a request past it is shed only while the
    observed p95 flush latency exceeds ``shed_p95_s`` (or always, if
    ``shed_p95_s`` is ``None``) — queue depth alone is not overload
    when flushes are fast.
    """

    max_queue_rows: int = 1024
    shed_queue_rows: Optional[int] = None
    shed_p95_s: Optional[float] = None

    def __post_init__(self):
        if self.max_queue_rows < 1:
            raise ValueError("max_queue_rows must be positive")
        if self.shed_queue_rows is not None:
            if self.shed_queue_rows < 1:
                raise ValueError("shed_queue_rows must be positive")
            if self.shed_queue_rows > self.max_queue_rows:
                raise ValueError(
                    "shed_queue_rows (soft watermark) must not exceed "
                    "max_queue_rows (hard bound)")
        if self.shed_p95_s is not None and self.shed_p95_s <= 0:
            raise ValueError("shed_p95_s must be positive")


class AdmissionController:
    """Applies an :class:`AdmissionPolicy`; counts the outcomes.

    Thread-safe; shared by the sync and async submit paths.  The p95
    input is a zero-arg supplier so the (mildly costly) percentile is
    only computed when the soft watermark is actually crossed.
    """

    def __init__(self, policy: Optional[AdmissionPolicy] = None):
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._lock = threading.Lock()
        self.admitted_requests = 0
        self.admitted_rows = 0
        self.rejected_requests = 0
        self.shed_requests = 0
        self.cancelled_requests = 0
        self.cancelled_rows = 0

    def admit(self, rows: int, pending_rows: int,
              p95_supplier: Optional[Callable[[], float]] = None) -> None:
        """Admit ``rows`` against ``pending_rows`` already queued.

        Raises :class:`QueueFull` / :class:`Overload` (both
        :class:`AdmissionRejected`) instead of enqueueing when a
        watermark is crossed; otherwise records the admission.
        """
        policy = self.policy
        would_be = pending_rows + rows
        if would_be > policy.max_queue_rows:
            with self._lock:
                self.rejected_requests += 1
            raise QueueFull(
                f"queue full: {pending_rows} rows pending + {rows} "
                f"requested > max_queue_rows={policy.max_queue_rows}")
        if policy.shed_queue_rows is not None \
                and would_be > policy.shed_queue_rows:
            p95 = p95_supplier() if p95_supplier is not None else 0.0
            if policy.shed_p95_s is None or p95 > policy.shed_p95_s:
                with self._lock:
                    self.shed_requests += 1
                raise Overload(
                    f"overload shed: {pending_rows} rows pending past "
                    f"watermark {policy.shed_queue_rows} with p95 "
                    f"{p95 * 1e3:.1f} ms over "
                    f"{(policy.shed_p95_s or 0) * 1e3:.1f} ms")
        with self._lock:
            self.admitted_requests += 1
            self.admitted_rows += rows

    def release(self, rows: int) -> None:
        """Reconcile one admitted-then-cancelled request.

        An async submit that passed admission books its rows into
        ``admitted_rows`` — if the ticket is later cancelled (even
        after its flush started) those rows were never *served*, and
        without this hook the admitted counters drift from reality on
        every cancellation.  The front-ends call this from the
        cancellation path; ``served_rows`` is then the honest load
        figure for capacity planning.
        """
        with self._lock:
            self.cancelled_requests += 1
            self.cancelled_rows += rows

    @property
    def served_rows(self) -> int:
        """Admitted rows minus cancelled ones — the rows that actually
        reached (or will reach) an engine."""
        with self._lock:
            return self.admitted_rows - self.cancelled_rows


class SloPolicy:
    """Map observed p95 flush latency to a served-T multiplier.

    While p95 is at or under ``target_p95_s`` every group runs its
    requested T.  Over target, the group's T is scaled by
    ``target / p95`` — proportional control: a 2× latency breach
    halves the Monte-Carlo passes, halving flush cost — floored at
    ``t_min`` and ceilinged at the requested T (a request never gets
    *more* passes than it asked for).  ``max_degradation`` optionally
    floors the multiplier itself (e.g. 0.25 = never serve below a
    quarter of the requested passes, whatever the breach).

    Stateless apart from counters, so the same policy object can be
    shared across schedulers.
    """

    def __init__(self, target_p95_s: float, t_min: int = 1,
                 max_degradation: float = 0.0):
        if target_p95_s <= 0:
            raise ValueError("target_p95_s must be positive")
        if t_min < 1:
            raise ValueError("t_min must be at least 1")
        if not 0.0 <= max_degradation <= 1.0:
            raise ValueError("max_degradation must be in [0, 1]")
        self.target_p95_s = target_p95_s
        self.t_min = t_min
        self.max_degradation = max_degradation
        self._lock = threading.Lock()
        self.degraded_groups = 0
        self.shed_passes = 0

    def multiplier(self, p95_s: float) -> float:
        """The served-T fraction for an observed p95 (1.0 = full)."""
        if p95_s <= self.target_p95_s:
            return 1.0
        return max(self.target_p95_s / p95_s, self.max_degradation)

    def served_t(self, requested_t: int, p95_s: float) -> int:
        """MC passes to actually run for a group requesting
        ``requested_t`` under an observed p95 of ``p95_s``."""
        mult = self.multiplier(p95_s)
        if mult >= 1.0:
            return requested_t
        served = min(requested_t,
                     max(self.t_min, math.ceil(requested_t * mult)))
        if served < requested_t:
            with self._lock:
                self.degraded_groups += 1
                self.shed_passes += requested_t - served
        return served


@dataclasses.dataclass
class HealthPolicy:
    """Replica quarantine / re-admission knobs.

    ``quarantine_after``: consecutive failures that quarantine a
    replica.  ``probe_backoff_s``: delay before the first probation
    probe, doubled (``backoff_factor``) on every failed probe up to
    ``max_backoff_s``.  ``probation_successes``: clean flushes a
    probationary replica must serve to be re-admitted as healthy.
    ``latency_window``: per-replica latency ring size (p95 base).
    """

    quarantine_after: int = 3
    probe_backoff_s: float = 1.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 60.0
    probation_successes: int = 2
    latency_window: int = 64

    def __post_init__(self):
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be at least 1")
        if self.probe_backoff_s <= 0:
            raise ValueError("probe_backoff_s must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")
        if self.max_backoff_s < self.probe_backoff_s:
            raise ValueError("max_backoff_s must be >= probe_backoff_s")
        if self.probation_successes < 1:
            raise ValueError("probation_successes must be at least 1")
        if self.latency_window < 1:
            raise ValueError("latency_window must be positive")


HEALTHY = "healthy"
PROBATION = "probation"
QUARANTINED = "quarantined"


class ReplicaHealth:
    """Rolling health record of one engine replica."""

    __slots__ = ("name", "state", "consecutive_failures", "failures",
                 "successes", "rows", "probes", "readmissions",
                 "quarantines", "backoff_s", "quarantined_at",
                 "probation_streak", "latencies", "last_error")

    def __init__(self, name: str, latency_window: int,
                 initial_backoff_s: float):
        self.name = name
        self.state = HEALTHY
        self.consecutive_failures = 0
        self.failures = 0
        self.successes = 0
        self.rows = 0
        self.probes = 0              # quarantine -> probation promotions
        self.readmissions = 0        # probation -> healthy promotions
        self.quarantines = 0
        self.backoff_s = initial_backoff_s
        self.quarantined_at: Optional[float] = None
        self.probation_streak = 0
        self.latencies: deque = deque(maxlen=latency_window)
        self.last_error: Optional[BaseException] = None

    @property
    def p95_latency_s(self) -> float:
        return _percentile(sorted(self.latencies), 0.95)

    def as_dict(self) -> dict:
        """Telemetry view (stable keys; for dashboards and tests)."""
        return {
            "name": self.name,
            "state": self.state,
            "failures": self.failures,
            "successes": self.successes,
            "consecutive_failures": self.consecutive_failures,
            "rows": self.rows,
            "probes": self.probes,
            "readmissions": self.readmissions,
            "quarantines": self.quarantines,
            "backoff_s": self.backoff_s,
            "p95_latency_s": self.p95_latency_s,
        }


class ControlPlane:
    """Ties health, admission, and adaptive-T to one scheduler.

    Construct it, then pass it to a scheduler
    (``BatchScheduler(engine, controlplane=cp)``); the scheduler binds
    itself and consults the plane on every submit (admission), every
    flush group (adaptive-T), and — for sharded schedulers — every
    shard call (health).  All hooks are cheap and lock-local, so they
    can be called from shard worker threads without touching the
    scheduler lock (no lock-order inversion with an in-flight flush).

    Parameters
    ----------
    health:
        Quarantine policy; ``None`` keeps health tracking with default
        knobs (tracking is passive until a sharded scheduler reports
        outcomes).
    admission:
        :class:`AdmissionPolicy` (wrapped in a fresh controller) or a
        ready :class:`AdmissionController`; ``None`` disables
        admission control.
    slo:
        :class:`SloPolicy` driving adaptive-T; ``None`` disables
        degradation (every group runs its requested T).
    autoscaler:
        Optional :class:`~repro.serving.autoscale.Autoscaler`.  When a
        replica is quarantined, :meth:`after_flush` promotes one warm
        spare per quarantine through it to restore capacity.
    metrics:
        The :class:`~repro.serving.metrics.LoadMetrics` supplying the
        observed p95 (created when omitted; the binding scheduler
        adopts it so flush latencies flow in automatically).
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(self, *, health: Optional[HealthPolicy] = None,
                 admission=None, slo: Optional[SloPolicy] = None,
                 autoscaler=None, metrics: Optional[LoadMetrics] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.health_policy = health if health is not None else HealthPolicy()
        if isinstance(admission, AdmissionPolicy):
            admission = AdmissionController(admission)
        self.admission: Optional[AdmissionController] = admission
        self.slo = slo
        self.autoscaler = autoscaler
        self.metrics = metrics if metrics is not None else LoadMetrics()
        self._clock = clock
        self._lock = threading.Lock()
        self._health: Dict[int, ReplicaHealth] = {}    # id(engine) keyed
        self._engines: Dict[int, object] = {}
        self._pending_promotions = 0
        self.scheduler = None
        self.quarantines = 0
        self.promotions = 0

    # ------------------------------------------------------------------
    def bind(self, scheduler) -> None:
        """Called by the scheduler constructor taking this plane."""
        self.scheduler = scheduler

    def observed_p95(self) -> float:
        """The p95 flush latency driving admission and adaptive-T."""
        return self.metrics.p95_latency_s()

    # ----------------------------------------------------- submit path
    def admit(self, rows: int, pending_rows: int) -> None:
        """Admission hook (raises :class:`AdmissionRejected`)."""
        if self.admission is not None:
            self.admission.admit(rows, pending_rows, self.observed_p95)

    # ------------------------------------------------------ flush path
    def served_t(self, requested_t: int) -> int:
        """Adaptive-T hook: passes to serve for a group's requested T."""
        if self.slo is None:
            return requested_t
        return self.slo.served_t(requested_t, self.observed_p95())

    # ----------------------------------------------------- health path
    def _record(self, engine) -> ReplicaHealth:
        key = id(engine)
        record = self._health.get(key)
        if record is None:
            record = ReplicaHealth(
                f"replica-{len(self._health)}",
                self.health_policy.latency_window,
                self.health_policy.probe_backoff_s)
            self._health[key] = record
            self._engines[key] = engine
        return record

    def record_outcome(self, engine, ok: bool, latency_s: float = 0.0,
                       rows: int = 0,
                       error: Optional[BaseException] = None) -> None:
        """One shard call's outcome for one replica.

        Called by the sharded scheduler from its shard workers; only
        the control-plane lock is taken, never the scheduler's.
        """
        policy = self.health_policy
        with self._lock:
            record = self._record(engine)
            if ok:
                record.successes += 1
                record.rows += rows
                record.consecutive_failures = 0
                record.latencies.append(max(latency_s, 0.0))
                if record.state == PROBATION:
                    record.probation_streak += 1
                    if record.probation_streak >= policy.probation_successes:
                        record.state = HEALTHY
                        record.readmissions += 1
                        record.backoff_s = policy.probe_backoff_s
                return
            record.failures += 1
            record.consecutive_failures += 1
            record.last_error = error
            if record.state == PROBATION:
                # Failed its probe: back to quarantine, longer backoff.
                record.state = QUARANTINED
                record.quarantined_at = self._clock()
                record.backoff_s = min(
                    record.backoff_s * policy.backoff_factor,
                    policy.max_backoff_s)
                record.probation_streak = 0
                record.quarantines += 1
                self.quarantines += 1
            elif record.state == HEALTHY \
                    and record.consecutive_failures >= policy.quarantine_after:
                record.state = QUARANTINED
                record.quarantined_at = self._clock()
                record.backoff_s = policy.probe_backoff_s
                record.quarantines += 1
                self.quarantines += 1
                self._pending_promotions += 1

    def eligible_engines(self, engines: List[object]) -> List[object]:
        """Filter a flush's replica snapshot through health state.

        Quarantined replicas whose backoff has elapsed are promoted to
        probation here (this flush *is* their probe).  If every
        replica is quarantined the full set is returned — a degraded
        fleet still serves.
        """
        now = self._clock()
        eligible: List[object] = []
        with self._lock:
            for engine in engines:
                record = self._health.get(id(engine))
                if record is None or record.state != QUARANTINED:
                    eligible.append(engine)
                elif record.quarantined_at is not None \
                        and now - record.quarantined_at >= record.backoff_s:
                    record.state = PROBATION
                    record.probation_streak = 0
                    record.probes += 1
                    eligible.append(engine)
        return eligible if eligible else list(engines)

    def after_flush(self) -> None:
        """Post-flush housekeeping (same thread as the flush).

        Promotes one warm spare per quarantine recorded since the last
        call, through the attached autoscaler — capacity replacement,
        deliberately exempt from scaling patience/cooldown.
        """
        while True:
            with self._lock:
                if self._pending_promotions <= 0:
                    return
                self._pending_promotions -= 1
            if self.autoscaler is None:
                continue
            self.autoscaler.promote_spare()
            with self._lock:
                self.promotions += 1

    # --------------------------------------------------- introspection
    def health_of(self, engine) -> Optional[ReplicaHealth]:
        """The health record of one replica (``None`` if never seen)."""
        with self._lock:
            return self._health.get(id(engine))

    def states(self) -> Dict[str, str]:
        """``replica-name -> state`` for every replica ever seen."""
        with self._lock:
            return {r.name: r.state for r in self._health.values()}

    def quarantined_engines(self) -> List[object]:
        """The engines currently quarantined (not on probation)."""
        with self._lock:
            return [self._engines[key] for key, r in self._health.items()
                    if r.state == QUARANTINED]

    def remove_quarantined(self) -> List[object]:
        """Drop quarantined replicas from the bound sharded scheduler.

        Operational escape hatch: quarantined replicas normally stay
        in the set (unscheduled) awaiting probation; this removes them
        entirely — e.g. before handing the engine back for
        re-programming.  The scheduler's last replica is never
        removed.  Removed engines stop being tracked (a later
        ``add_replica`` of the same object starts a fresh record) and
        are returned.
        """
        removed: List[object] = []
        for engine in self.quarantined_engines():
            try:
                self.scheduler.remove_replica(engine)
            except ValueError:
                continue             # last replica, or already gone
            with self._lock:
                self._health.pop(id(engine), None)
                self._engines.pop(id(engine), None)
            removed.append(engine)
        return removed


__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionRejected",     # re-exported from repro.serving.errors
    "ControlPlane",
    "HealthPolicy",
    "Overload",              # re-exported from repro.serving.errors
    "QueueFull",             # re-exported from repro.serving.errors
    "ReplicaHealth",
    "SloPolicy",
]
