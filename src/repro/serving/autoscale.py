"""Replica autoscaling policy for the sharded scheduler.

:class:`Autoscaler` closes the serving control loop: it reads
:class:`~repro.serving.metrics.MetricsSnapshot` signals (EWMA
utilization and pending-queue depth) and grows or shrinks a
:class:`~repro.serving.sharded.ShardedScheduler`'s replica set
between ``min_replicas`` and ``max_replicas``.

Design points:

- **Hysteresis** — scale-up triggers at ``scale_up_utilization`` (or
  a per-replica queue high-watermark), scale-down only *below*
  ``scale_down_utilization`` with an empty-enough queue; the band in
  between holds the current size and resets both patience streaks, so
  load hovering around a threshold cannot make the replica count
  oscillate.
- **Patience + cooldown** — each direction needs its configured
  number of *consecutive* qualifying observations, and after any
  action the policy waits ``cooldown_s`` before acting again.
- **Warm spares** — scale-up pops a pre-built engine from the spare
  pool (O(1) list append on the scheduler) instead of constructing
  one mid-traffic, so growing the replica set never stalls an
  in-flight flush; replicas removed on scale-down refill the pool
  (up to ``warm_spares``), and :meth:`Autoscaler.replenish_spares`
  rebuilds the rest off the hot path.
- **SLO mode** — with a ``target_p95_s``, hot/cold is judged from
  the observed p95 flush latency against that target instead of the
  utilization EWMA: the policy scales to what the *user experiences*
  rather than to how busy the engines look.  The queue watermark
  still applies (a burst fills the queue before the latency window
  turns over).
- **Promotion** — :meth:`Autoscaler.promote_spare` adds a replica
  *outside* the policy loop: it is how the control plane replaces a
  quarantined replica's capacity, so it bypasses patience, cooldown,
  and the ``max_replicas`` check deliberately — replacing lost
  capacity is not a scale-up.

The policy is deliberately synchronous and side-effect free except
for the scheduler mutation: drive it by calling :meth:`Autoscaler.
step` after each flush (the async front-end does this automatically)
or from any periodic task.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.serving.metrics import LoadMetrics, MetricsSnapshot


class Autoscaler:
    """Grow/shrink a sharded scheduler's replica set from load metrics.

    Parameters
    ----------
    scheduler:
        The :class:`~repro.serving.sharded.ShardedScheduler` whose
        replica set this policy controls (anything exposing
        ``n_replicas`` / ``add_replica`` / ``remove_replica``).
    engine_factory:
        Zero-argument callable building one fresh engine replica.
    metrics:
        The :class:`~repro.serving.metrics.LoadMetrics` feeding the
        policy; optional when every :meth:`step` call passes an
        explicit snapshot.
    min_replicas / max_replicas:
        Inclusive clamp on the replica count.
    scale_up_utilization / scale_down_utilization:
        EWMA-utilization thresholds; the gap between them is the
        hysteresis band (must be positive).
    scale_up_queue_rows:
        Per-replica pending-row high watermark that also triggers
        scale-up (a burst fills the queue long before the utilization
        EWMA catches up).  Defaults to ``2 * scheduler.max_batch``.
    up_patience / down_patience:
        Consecutive qualifying observations required per direction.
        Scale-down defaults to more patience than scale-up: adding
        capacity late drops requests, removing it late only wastes a
        replica.
    cooldown_s:
        Minimum seconds between scaling actions.
    warm_spares:
        Target size of the pre-built engine pool.
    target_p95_s:
        Optional latency SLO.  When set, :meth:`step` judges hot /
        cold from the snapshot's p95 flush latency against this
        target instead of the utilization EWMA (see
        ``scale_down_p95_fraction``); per-call ``step(...,
        target_p95_s=...)`` overrides it for one observation.
    scale_down_p95_fraction:
        In SLO mode, scale-down requires the p95 *below* this
        fraction of the target (with an empty-enough queue) — the
        hysteresis band of the latency loop.  Must be in (0, 1).
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(self, scheduler, engine_factory: Callable[[], object], *,
                 metrics: Optional[LoadMetrics] = None,
                 min_replicas: int = 1, max_replicas: int = 4,
                 scale_up_utilization: float = 0.75,
                 scale_down_utilization: float = 0.30,
                 scale_up_queue_rows: Optional[float] = None,
                 up_patience: int = 1, down_patience: int = 3,
                 cooldown_s: float = 0.0, warm_spares: int = 1,
                 target_p95_s: Optional[float] = None,
                 scale_down_p95_fraction: float = 0.5,
                 clock: Callable[[], float] = time.monotonic):
        if min_replicas < 1:
            raise ValueError("min_replicas must be at least 1")
        if max_replicas < min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if not scale_down_utilization < scale_up_utilization:
            raise ValueError(
                "need a hysteresis band: scale_down_utilization must be "
                "strictly below scale_up_utilization")
        if up_patience < 1 or down_patience < 1:
            raise ValueError("patience values must be at least 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        if warm_spares < 0:
            raise ValueError("warm_spares must be non-negative")
        if target_p95_s is not None and target_p95_s <= 0:
            raise ValueError("target_p95_s must be positive")
        if not 0.0 < scale_down_p95_fraction < 1.0:
            raise ValueError(
                "scale_down_p95_fraction must be in (0, 1)")
        self.scheduler = scheduler
        self.engine_factory = engine_factory
        self.metrics = metrics
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.scale_up_utilization = scale_up_utilization
        self.scale_down_utilization = scale_down_utilization
        if scale_up_queue_rows is None:
            scale_up_queue_rows = 2.0 * getattr(scheduler, "max_batch", 64)
        self.scale_up_queue_rows = scale_up_queue_rows
        self.up_patience = up_patience
        self.down_patience = down_patience
        self.cooldown_s = cooldown_s
        self.warm_spares = warm_spares
        self.target_p95_s = target_p95_s
        self.scale_down_p95_fraction = scale_down_p95_fraction
        self._clock = clock
        self._spares: List[object] = []
        self._up_streak = 0
        self._down_streak = 0
        self._last_action: Optional[float] = None
        self.scale_ups = 0
        self.scale_downs = 0
        self.promotions = 0
        self.replenish_spares()

    @classmethod
    def from_snapshot(cls, scheduler, snapshot_path: str,
                      **kwargs) -> "Autoscaler":
        """An autoscaler whose replicas rehydrate from a saved
        :class:`~repro.cim.snapshot.DeploymentSnapshot`.

        The artifact is loaded and verified once, up front; every
        replica spin-up then calls the snapshot's ``build`` — direct
        state installation, no retraining and no recompilation — which
        is what makes warm-spare replenishment cheap enough to run
        between flushes.
        """
        from repro.cim.snapshot import snapshot_engine_factory
        return cls(scheduler, snapshot_engine_factory(snapshot_path),
                   **kwargs)

    # ------------------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        """Current replica count of the controlled scheduler."""
        return self.scheduler.n_replicas

    @property
    def spare_count(self) -> int:
        """Warm engines ready for an O(1) scale-up."""
        return len(self._spares)

    def replenish_spares(self) -> int:
        """Build engines until the warm pool holds ``warm_spares``.

        Engine construction is the expensive part of scaling up
        (weight decode, crossbar programming); run this off the hot
        path — at start-up, or on a background executor after a
        scale-up consumed a spare.  Returns the number built.
        """
        built = 0
        while len(self._spares) < self.warm_spares:
            self._spares.append(self.engine_factory())
            built += 1
        return built

    def promote_spare(self) -> object:
        """Add one replica *now*, outside the policy loop.

        Pops a warm spare (or builds an engine if the pool is empty)
        and appends it to the scheduler.  This is the control plane's
        capacity-replacement path for a freshly quarantined replica,
        so it deliberately skips patience, cooldown, *and* the
        ``max_replicas`` clamp — the quarantined engine still sits in
        the replica list (unscheduled) until it re-admits or is
        removed, and the fleet's *serving* capacity is what must stay
        level.  It also leaves the policy's streaks and cooldown
        clock untouched: replacing lost capacity is not a scaling
        decision and must not delay the next real one.

        Returns the engine that was added.
        """
        engine = self._spares.pop() if self._spares else self.engine_factory()
        self.scheduler.add_replica(engine)
        self.promotions += 1
        return engine

    # ------------------------------------------------------------------
    def step(self, snapshot: Optional[MetricsSnapshot] = None,
             queue_rows: Optional[int] = None,
             target_p95_s: Optional[float] = None) -> int:
        """Run one policy observation; returns the replica delta.

        ``snapshot`` defaults to ``self.metrics.snapshot()``;
        ``queue_rows`` overrides the snapshot's queue depth (the
        async front-end passes its live pending-row count, which is
        fresher than the last recorded observation); ``target_p95_s``
        switches this observation to SLO mode (p95 against the
        target), overriding the constructor-level setting.

        Returns ``+1`` (scaled up), ``-1`` (scaled down), or ``0``.
        Out-of-clamp replica counts are corrected first, regardless of
        load, patience, or cooldown.
        """
        n = self.scheduler.n_replicas
        if n < self.min_replicas:
            return self._scale_up()
        if n > self.max_replicas:
            return self._scale_down()
        if snapshot is None:
            if self.metrics is None:
                return 0
            snapshot = self.metrics.snapshot()
        queue = (snapshot.queue_depth if queue_rows is None
                 else queue_rows)
        per_replica_queue = queue / max(n, 1)

        target = (self.target_p95_s if target_p95_s is None
                  else target_p95_s)
        if target is not None:
            if target <= 0:
                raise ValueError("target_p95_s must be positive")
            # SLO mode: scale to the latency the clients observe.  A
            # p95 of 0.0 means the window is empty (no flush yet) —
            # treat as neither hot nor cold.
            p95 = snapshot.p95_latency_s
            hot = (p95 > target
                   or per_replica_queue >= self.scale_up_queue_rows)
            cold = (0.0 < p95 < self.scale_down_p95_fraction * target
                    and per_replica_queue < 1.0)
        else:
            hot = (snapshot.utilization >= self.scale_up_utilization
                   or per_replica_queue >= self.scale_up_queue_rows)
            cold = (snapshot.utilization <= self.scale_down_utilization
                    and per_replica_queue < 1.0)

        if hot:
            self._down_streak = 0
            self._up_streak += 1
            if (self._up_streak >= self.up_patience
                    and n < self.max_replicas
                    and self._cooldown_over()):
                return self._scale_up()
        elif cold:
            self._up_streak = 0
            self._down_streak += 1
            if (self._down_streak >= self.down_patience
                    and n > self.min_replicas
                    and self._cooldown_over()):
                return self._scale_down()
        else:
            # Hysteresis band: hold, and require fresh streaks.
            self._up_streak = 0
            self._down_streak = 0
        return 0

    # ------------------------------------------------------------------
    def _cooldown_over(self) -> bool:
        return (self._last_action is None
                or self._clock() - self._last_action >= self.cooldown_s)

    def _scale_up(self) -> int:
        engine = self._spares.pop() if self._spares else self.engine_factory()
        self.scheduler.add_replica(engine)
        self._after_action()
        self.scale_ups += 1
        return 1

    def _scale_down(self) -> int:
        engine = self.scheduler.remove_replica()
        if len(self._spares) < self.warm_spares:
            self._spares.append(engine)
        self._after_action()
        self.scale_downs += 1
        return -1

    def _after_action(self) -> None:
        self._up_streak = 0
        self._down_streak = 0
        self._last_action = self._clock()
