"""Sharded serving: one coalesced batch, many engine replicas.

A deployed CIM fabric scales out by replicating the programmed
crossbars; :class:`ShardedScheduler` is the serving-side counterpart.
It coalesces requests exactly like :class:`~repro.serving.scheduler.
BatchScheduler`, then splits each flush across the replica engines
and reassembles per-request slices from whichever replica served them.

Sharding is *request-granular*: one request's rows never straddle two
replicas, so all of its rows share every MC pass's mask bank /
component selection — the same mutual-consistency guarantee the
single-engine scheduler gives.  Replicas balance by row count via a
greedy assignment in arrival order.

Replica calls run concurrently on a thread pool by default; numpy
releases the GIL inside its BLAS kernels, so the shards genuinely
overlap.

The replica set is dynamic: :meth:`ShardedScheduler.add_replica` /
:meth:`ShardedScheduler.remove_replica` grow and shrink it at
runtime — the lever the :class:`~repro.serving.autoscale.Autoscaler`
pulls.  A replica whose engine call raises fails only its own shard's
tickets (the original exception re-raised on ``result()``); sibling
shards resolve normally.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serving.scheduler import BatchScheduler, _FailedResult, _Request


class ShardedScheduler(BatchScheduler):
    """Request coalescing over a pool of engine replicas.

    Parameters
    ----------
    engines:
        One batched MC engine per replica (each exposing
        ``mc_forward_batched``).  The first replica doubles as the
        scheduler's nominal ``engine`` attribute and can never be
        removed.
    parallel:
        Run replica calls on a thread pool (default).  ``False``
        executes shards sequentially — useful for deterministic tests
        and debugging.

    Remaining keyword arguments are forwarded to
    :class:`BatchScheduler`.
    """

    def __init__(self, engines: Sequence, parallel: bool = True, **kwargs):
        engines = list(engines)
        if not engines:
            raise ValueError("need at least one engine replica")
        super().__init__(engines[0], **kwargs)
        self.engines = engines
        self.parallel = parallel
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_size = 0
        # Pools replaced by growth are retired, not shut down: a
        # concurrent flush may have snapshotted one and must still be
        # able to submit to it.  They are closed with the scheduler.
        self._retired_pools: List[ThreadPoolExecutor] = []
        with self._lock:
            self._ensure_pool_locked()

    @property
    def n_replicas(self) -> int:
        """Current number of engine replicas."""
        with self._lock:
            return len(self.engines)

    def add_replica(self, engine) -> int:
        """Append an engine replica; returns the new replica count.

        Safe to call at any time: flushes snapshot the replica list
        under the scheduler lock, so in-flight shard calls keep using
        the set they started with.  O(1) when the caller hands over a
        pre-built (warm) engine — the autoscaler's scale-up path.
        """
        with self._lock:
            self.engines.append(engine)
            self._ensure_pool_locked()
            return len(self.engines)

    def remove_replica(self, engine=None):
        """Drop and return a replica (the most recent by default).

        ``engine`` removes that *specific* replica instead — the
        control plane uses this to evict a quarantined engine, which,
        unlike a scale-down pop, may sit anywhere in the list.  The
        returned engine is no longer scheduled new shards (it may
        still be finishing one, which completes normally) and can be
        kept as a warm spare for a later :meth:`add_replica`.

        Raises
        ------
        ValueError
            When only one replica remains — a scheduler always keeps
            at least one engine — or when ``engine`` is not a current
            replica.
        """
        with self._lock:
            if len(self.engines) <= 1:
                raise ValueError(
                    "cannot remove the last engine replica")
            if engine is None:
                return self.engines.pop()
            for i, candidate in enumerate(self.engines):
                if candidate is engine:
                    return self.engines.pop(i)
            raise ValueError(
                "engine is not a replica of this scheduler")

    def close(self) -> None:
        """Flush pending requests and shut down the shard pools."""
        super().close()
        with self._lock:
            pools, self._pool = [self._pool], None
            pools.extend(self._retired_pools)
            self._retired_pools = []
            self._pool_size = 0
        for pool in pools:
            if pool is not None:
                pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _ensure_pool_locked(self) -> None:
        """(Re)size the shard pool to the replica count.

        Growth replaces the executor; the old one is *retired*, not
        shut down, because an in-flight flush may have snapshotted it
        and still needs to submit shard calls (shutting it down here
        would fail that flush's whole T-group).  Retired pools hold
        only idle threads, are bounded by the number of scale-ups in
        the scheduler's lifetime, and are closed in :meth:`close`.
        Shrink keeps the larger pool, whose idle threads are free.
        """
        if not self.parallel or len(self.engines) < 2:
            return
        if self._pool is not None and self._pool_size >= len(self.engines):
            return
        if self._pool is not None:
            self._retired_pools.append(self._pool)
        self._pool_size = len(self.engines)
        self._pool = ThreadPoolExecutor(max_workers=self._pool_size,
                                        thread_name_prefix="shard")

    def _partition(self, requests: List[_Request],
                   n_replicas: Optional[int] = None
                   ) -> List[List[_Request]]:
        """Assign whole requests to replicas, balancing row counts.

        Greedy in arrival order: each request goes to the currently
        least-loaded replica.  Deterministic, so a given submission
        sequence always lands on the same replicas (for a fixed
        replica count).
        """
        if n_replicas is None:
            n_replicas = len(self.engines)
        shards: List[List[_Request]] = [[] for _ in range(n_replicas)]
        loads = [0] * n_replicas
        for request in requests:
            target = loads.index(min(loads))
            shards[target].append(request)
            loads[target] += request.x.shape[0]
        return shards

    def _run_group(self, requests: List[_Request], n_samples: int,
                   model_id: Optional[str] = None) -> Dict[int, object]:
        """One same-T group across the replicas; per-request slices.

        Only the default-engine route is sharded — the replicas are
        copies of one programmed fabric.  A registry-routed group runs
        on its registered model's own engine via the base scheduler
        (single call, still coalesced and T-grouped).

        A shard whose engine call raises resolves to
        :class:`_FailedResult` slots for exactly its own requests —
        sibling shards (other replicas, and other threads' futures)
        are never left pending.

        With a control plane attached, the replica snapshot is first
        filtered through its health state (quarantined replicas get no
        shards; an elapsed backoff turns this flush into the probe),
        and every shard call reports its outcome — success latency or
        failure — back to the plane.  The report takes only the
        plane's own lock, so pool workers never touch the scheduler
        lock the flushing thread is holding.
        """
        if model_id is not None:
            return super()._run_group(requests, n_samples, model_id)
        with self._lock:
            engines = list(self.engines)
            pool = self._pool
        controlplane = self.controlplane
        if controlplane is not None:
            engines = controlplane.eligible_engines(engines)
        shards = self._partition(requests, len(engines))
        self.last_shard_loads = [sum(r.x.shape[0] for r in shard)
                                 for shard in shards]
        occupied = [(engine, shard)
                    for engine, shard in zip(engines, shards) if shard]

        def run_shard(engine, shard: List[_Request]) -> Dict[int, object]:
            rows = sum(r.x.shape[0] for r in shard)
            t0 = time.perf_counter()
            try:
                coalesced = np.concatenate([r.x for r in shard], axis=0)
                result = engine.mc_forward_batched(
                    coalesced, n_samples=n_samples,
                    chunk_passes=self.chunk_passes)
                resolved = self._slice_group(shard, result)
            except Exception as exc:  # noqa: BLE001 — delivered per ticket
                if controlplane is not None:
                    controlplane.record_outcome(
                        engine, ok=False, rows=rows, error=exc)
                return {r.seq: _FailedResult(exc) for r in shard}
            if controlplane is not None:
                controlplane.record_outcome(
                    engine, ok=True, rows=rows,
                    latency_s=time.perf_counter() - t0)
            return resolved

        self.stats.shard_calls += len(occupied)
        resolved: Dict[int, object] = {}
        if pool is not None and len(occupied) > 1:
            futures = [pool.submit(run_shard, engine, shard)
                       for engine, shard in occupied]
            for future in futures:
                resolved.update(future.result())
        else:
            for engine, shard in occupied:
                resolved.update(run_shard(engine, shard))
        return resolved
