"""Sharded serving: one coalesced batch, many engine replicas.

A deployed CIM fabric scales out by replicating the programmed
crossbars; :class:`ShardedScheduler` is the serving-side counterpart.
It coalesces requests exactly like :class:`~repro.serving.scheduler.
BatchScheduler`, then splits each flush across the replica engines
and reassembles per-request slices from whichever replica served them.

Sharding is *request-granular*: one request's rows never straddle two
replicas, so all of its rows share every MC pass's mask bank /
component selection — the same mutual-consistency guarantee the
single-engine scheduler gives.  Replicas balance by row count via a
greedy assignment in arrival order.

Replica calls run concurrently on a thread pool by default; numpy
releases the GIL inside its BLAS kernels, so the shards genuinely
overlap.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bayesian.base import PredictiveResult
from repro.serving.scheduler import BatchScheduler, _Request


class ShardedScheduler(BatchScheduler):
    """Request coalescing over a pool of engine replicas.

    Parameters
    ----------
    engines:
        One batched MC engine per replica (each exposing
        ``mc_forward_batched``).  The first replica doubles as the
        scheduler's nominal ``engine`` attribute.
    parallel:
        Run replica calls on a thread pool (default).  ``False``
        executes shards sequentially — useful for deterministic tests
        and debugging.

    Remaining keyword arguments are forwarded to
    :class:`BatchScheduler`.
    """

    def __init__(self, engines: Sequence, parallel: bool = True, **kwargs):
        engines = list(engines)
        if not engines:
            raise ValueError("need at least one engine replica")
        super().__init__(engines[0], **kwargs)
        self.engines = engines
        self.parallel = parallel and len(engines) > 1
        self._pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=len(engines),
                               thread_name_prefix="shard")
            if self.parallel else None)

    @property
    def n_replicas(self) -> int:
        return len(self.engines)

    def close(self) -> None:
        super().close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    def _partition(self, requests: List[_Request]) -> List[List[_Request]]:
        """Assign whole requests to replicas, balancing row counts.

        Greedy in arrival order: each request goes to the currently
        least-loaded replica.  Deterministic, so a given submission
        sequence always lands on the same replicas.
        """
        shards: List[List[_Request]] = [[] for _ in self.engines]
        loads = [0] * len(self.engines)
        for request in requests:
            target = loads.index(min(loads))
            shards[target].append(request)
            loads[target] += request.x.shape[0]
        return shards

    def _run_group(self, requests: List[_Request],
                   n_samples: int) -> Dict[int, PredictiveResult]:
        shards = self._partition(requests)
        occupied = [(engine, shard)
                    for engine, shard in zip(self.engines, shards) if shard]

        def run_shard(engine, shard: List[_Request]
                      ) -> Dict[int, PredictiveResult]:
            coalesced = np.concatenate([r.x for r in shard], axis=0)
            result = engine.mc_forward_batched(
                coalesced, n_samples=n_samples,
                chunk_passes=self.chunk_passes)
            return self._slice_group(shard, result)

        self.stats.shard_calls += len(occupied)
        resolved: Dict[int, PredictiveResult] = {}
        if self._pool is not None and len(occupied) > 1:
            futures = [self._pool.submit(run_shard, engine, shard)
                       for engine, shard in occupied]
            for future in futures:
                resolved.update(future.result())
        else:
            for engine, shard in occupied:
                resolved.update(run_shard(engine, shard))
        return resolved
