"""Multi-tenant model registry for the serving stack.

One serving fleet rarely hosts one model: the same spintronic fabric
serves the SpinDrop classifier, the SpinBayes variant, and the
per-pixel segmenter side by side.  :class:`ModelRegistry` maps a
string model-id to an engine *source* — a zero-arg factory, or a saved
:class:`~repro.cim.snapshot.DeploymentSnapshot` artifact — and hands
live engines to the schedulers on demand:

* **lazy load** — an engine is materialized on first use, not at
  registration; snapshot-backed models rehydrate from disk without
  recompiling (no retraining, no re-programming draws);
* **LRU eviction** — with ``max_loaded`` set, the least recently used
  engines are unloaded once the cap is exceeded; the source is kept,
  so a later request transparently reloads.  An engine evicted while
  a flush still holds a reference finishes that flush normally — the
  registry only drops its own pointer;
* **per-model load metrics** — every model carries its own
  :class:`~repro.serving.metrics.LoadMetrics` collector (fed by the
  schedulers at flush time) plus load/eviction counters, so a mixed
  fleet's per-tenant throughput and latency are separable.

All entry points are thread-safe; loads are serialized under the
registry lock so concurrent submits for a cold model trigger exactly
one load.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.serving.metrics import LoadMetrics


class _ModelEntry:
    """Registered model: its engine source and per-model telemetry."""

    __slots__ = ("model_id", "factory", "feature_shape", "engine",
                 "metrics", "loads", "load_time_s", "snapshot_path")

    def __init__(self, model_id: str, factory: Callable[[], object],
                 feature_shape: Optional[tuple]):
        self.model_id = model_id
        self.factory = factory
        self.feature_shape = feature_shape
        self.engine: Optional[object] = None
        self.metrics = LoadMetrics()
        self.loads = 0
        self.load_time_s = 0.0
        self.snapshot_path: Optional[str] = None


class ModelRegistry:
    """Model-id → engine mapping with lazy load and LRU eviction.

    Parameters
    ----------
    max_loaded:
        Cap on simultaneously materialized engines; ``None`` (default)
        keeps every loaded engine resident.  When the cap is exceeded
        the least recently *used* engine is unloaded (its factory or
        snapshot source stays registered, so it reloads on demand).
    """

    def __init__(self, max_loaded: Optional[int] = None):
        if max_loaded is not None and max_loaded < 1:
            raise ValueError("max_loaded must be positive")
        self.max_loaded = max_loaded
        self._lock = threading.RLock()
        self._entries: Dict[str, _ModelEntry] = {}
        self._loaded: Dict[str, None] = {}      # insertion order = LRU
        self.evictions = 0

    # ------------------------------------------------------------------
    def register(self, model_id: str,
                 factory: Optional[Callable[[], object]] = None, *,
                 snapshot: Optional[str] = None,
                 engine: Optional[object] = None,
                 feature_shape: Optional[tuple] = None) -> None:
        """Register a model under exactly one engine source.

        ``factory`` is a zero-arg callable returning a batched MC
        engine; ``snapshot`` is a path to a saved
        :class:`~repro.cim.snapshot.DeploymentSnapshot` artifact
        (loaded and verified lazily, rehydrated per load); ``engine``
        hands over an already-built engine (counted as one load, and
        re-offered verbatim after an eviction).  ``feature_shape``
        optionally pins the per-sample input shape so schedulers need
        not infer it from the first request.
        """
        sources = [s for s in (factory, snapshot, engine) if s is not None]
        if len(sources) != 1:
            raise ValueError(
                "register exactly one of factory=, snapshot=, engine=")
        if snapshot is not None:
            def factory(path: str = snapshot):
                from repro.cim.snapshot import DeploymentSnapshot
                return DeploymentSnapshot.load(path).build()
        elif engine is not None:
            def factory(prebuilt=engine):
                return prebuilt
        shape = None if feature_shape is None else tuple(feature_shape)
        with self._lock:
            if model_id in self._entries:
                raise ValueError(f"model {model_id!r} already registered")
            entry = _ModelEntry(model_id, factory, shape)
            if snapshot is not None:
                # Remembered verbatim so process-pool workers can boot
                # this model from its artifact (repro.serving.procpool
                # ships the *path* across the process boundary, never
                # the arrays).
                entry.snapshot_path = snapshot
            self._entries[model_id] = entry
            if engine is not None:
                entry.engine = engine
                entry.loads = 1
                self._loaded[model_id] = None
                self._evict_over_cap_locked()

    def unregister(self, model_id: str) -> None:
        """Remove a model entirely (engine, source, and metrics)."""
        with self._lock:
            self._require(model_id)
            del self._entries[model_id]
            self._loaded.pop(model_id, None)

    # ------------------------------------------------------------------
    def engine(self, model_id: str):
        """The live engine for ``model_id`` — loading it if needed.

        Touches the LRU order and applies the ``max_loaded`` cap.
        Loads run under the registry lock, so concurrent callers of a
        cold model wait for (and share) a single load.
        """
        with self._lock:
            entry = self._require(model_id)
            if entry.engine is None:
                t0 = time.perf_counter()
                entry.engine = entry.factory()
                entry.load_time_s += time.perf_counter() - t0
                entry.loads += 1
            self._loaded.pop(model_id, None)
            self._loaded[model_id] = None        # move to LRU tail
            self._evict_over_cap_locked()
            return entry.engine

    def evict(self, model_id: str) -> bool:
        """Unload one model's engine (source kept); True if it was loaded."""
        with self._lock:
            self._require(model_id)
            if model_id not in self._loaded:
                return False
            self._unload_locked(model_id)
            return True

    # ------------------------------------------------------------------
    def feature_shape(self, model_id: str) -> Optional[tuple]:
        with self._lock:
            return self._require(model_id).feature_shape

    def snapshot_path(self, model_id: str) -> Optional[str]:
        """The artifact path a snapshot-registered model boots from
        (``None`` for factory/engine-registered models)."""
        with self._lock:
            return self._require(model_id).snapshot_path

    def metrics(self, model_id: str) -> LoadMetrics:
        """The model's own flush-metrics collector."""
        with self._lock:
            return self._require(model_id).metrics

    def record_flush(self, model_id: str, rows: int, n_requests: int,
                     latency_s: float) -> None:
        """Feed one flush's telemetry into the model's collector
        (called by the schedulers after every per-model engine call)."""
        self.metrics(model_id).record_flush(
            rows=rows, n_requests=n_requests, latency_s=latency_s)

    def stats(self, model_id: str) -> dict:
        """Load/residency counters for one model."""
        with self._lock:
            entry = self._require(model_id)
            return {
                "loaded": entry.engine is not None,
                "loads": entry.loads,
                "load_time_s": entry.load_time_s,
            }

    # ------------------------------------------------------------------
    @property
    def model_ids(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    @property
    def loaded_models(self) -> List[str]:
        """Currently materialized models, least recently used first."""
        with self._lock:
            return list(self._loaded)

    def __contains__(self, model_id: str) -> bool:
        with self._lock:
            return model_id in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def _require(self, model_id: str) -> _ModelEntry:
        try:
            return self._entries[model_id]
        except KeyError:
            raise KeyError(
                f"model {model_id!r} is not registered "
                f"(known: {sorted(self._entries)})") from None

    def _evict_over_cap_locked(self) -> None:
        while self.max_loaded is not None \
                and len(self._loaded) > self.max_loaded:
            self._unload_locked(next(iter(self._loaded)))

    def _unload_locked(self, model_id: str) -> None:
        del self._loaded[model_id]
        self._entries[model_id].engine = None
        self.evictions += 1
