"""Serving layer: request coalescing over the batched MC engines.

Three front-ends share one coalescing core (see ``docs/serving.md``):

- :class:`BatchScheduler` — synchronous, single engine;
- :class:`ShardedScheduler` — synchronous, fan-out across engine
  replicas;
- :class:`AsyncBatchScheduler` — :mod:`asyncio` coroutines over
  either, with :class:`LoadMetrics` observability and optional
  :class:`Autoscaler`-driven replica scaling.
"""

from repro.serving.async_frontend import (
    AsyncBatchScheduler,
    AsyncPrediction,
)
from repro.serving.autoscale import Autoscaler
from repro.serving.metrics import LoadMetrics, MetricsSnapshot
from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import (
    BatchScheduler,
    PendingPrediction,
    SchedulerStats,
)
from repro.serving.sharded import ShardedScheduler

__all__ = [
    "AsyncBatchScheduler",
    "AsyncPrediction",
    "Autoscaler",
    "BatchScheduler",
    "LoadMetrics",
    "MetricsSnapshot",
    "ModelRegistry",
    "PendingPrediction",
    "SchedulerStats",
    "ShardedScheduler",
]
