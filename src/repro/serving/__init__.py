"""Serving layer: request coalescing over the batched MC engine."""

from repro.serving.scheduler import (
    BatchScheduler,
    PendingPrediction,
    SchedulerStats,
)

__all__ = [
    "BatchScheduler",
    "PendingPrediction",
    "SchedulerStats",
]
