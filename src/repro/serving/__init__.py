"""Serving layer: request coalescing over the batched MC engines."""

from repro.serving.scheduler import (
    BatchScheduler,
    PendingPrediction,
    SchedulerStats,
)
from repro.serving.sharded import ShardedScheduler

__all__ = [
    "BatchScheduler",
    "PendingPrediction",
    "SchedulerStats",
    "ShardedScheduler",
]
