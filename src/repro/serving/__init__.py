"""Serving layer: request coalescing over the batched MC engines.

Three front-ends share one coalescing core (see ``docs/serving.md``):

- :class:`BatchScheduler` — synchronous, single engine;
- :class:`ShardedScheduler` — synchronous, fan-out across engine
  replicas;
- :class:`AsyncBatchScheduler` — :mod:`asyncio` coroutines over
  either, with :class:`LoadMetrics` observability and optional
  :class:`Autoscaler`-driven replica scaling.

The SLO-driven control plane (:class:`ControlPlane`) layers replica
health quarantine, admission control, and adaptive-T degradation over
any of them; :mod:`repro.serving.faults` provides the deterministic
fault-injection doubles used to exercise it.
"""

from repro.serving.async_frontend import (
    AsyncBatchScheduler,
    AsyncPrediction,
)
from repro.serving.autoscale import Autoscaler
from repro.serving.controlplane import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    ControlPlane,
    HealthPolicy,
    ReplicaHealth,
    SloPolicy,
)
from repro.serving.metrics import LoadMetrics, MetricsSnapshot, ModelLatency
from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import (
    BatchScheduler,
    PendingPrediction,
    ResultTimeout,
    SchedulerStats,
)
from repro.serving.sharded import ShardedScheduler

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionRejected",
    "AsyncBatchScheduler",
    "AsyncPrediction",
    "Autoscaler",
    "BatchScheduler",
    "ControlPlane",
    "HealthPolicy",
    "LoadMetrics",
    "MetricsSnapshot",
    "ModelLatency",
    "ModelRegistry",
    "PendingPrediction",
    "ReplicaHealth",
    "ResultTimeout",
    "SchedulerStats",
    "ShardedScheduler",
    "SloPolicy",
]
