"""Serving layer: request coalescing over the batched MC engines.

Four front-ends share one coalescing core (see ``docs/serving.md``),
reachable uniformly through :func:`serve`:

- :class:`BatchScheduler` — synchronous, single engine
  (``backend="sync"``);
- :class:`ShardedScheduler` — synchronous, fan-out across engine
  replicas in threads (``backend="threads"``);
- :class:`ProcReplicaPool` — replicas in worker *processes* with
  shared-memory row transport, served through a sharded scheduler
  (``backend="procs"``);
- :class:`AsyncBatchScheduler` — :mod:`asyncio` coroutines over
  either, with :class:`LoadMetrics` observability and optional
  :class:`Autoscaler`-driven replica scaling (``backend="async"``).

The SLO-driven control plane (:class:`ControlPlane`) layers replica
health quarantine, admission control, and adaptive-T degradation over
any of them; :mod:`repro.serving.faults` provides the deterministic
fault-injection doubles used to exercise it.  Every serving-surface
exception lives in :mod:`repro.serving.errors` (the ticket lifecycle
is documented there too).
"""

from repro.serving.api import Frontend, ServingConfig, serve
from repro.serving.async_frontend import (
    AsyncBatchScheduler,
    AsyncPrediction,
)
from repro.serving.autoscale import Autoscaler
from repro.serving.controlplane import (
    AdmissionController,
    AdmissionPolicy,
    ControlPlane,
    HealthPolicy,
    ReplicaHealth,
    SloPolicy,
)
from repro.serving.errors import (
    AdmissionRejected,
    Overload,
    QueueFull,
    RemoteEngineError,
    ResultTimeout,
    WorkerDied,
)
from repro.serving.metrics import LoadMetrics, MetricsSnapshot, ModelLatency
from repro.serving.procpool import ProcReplica, ProcReplicaPool
from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import (
    BatchScheduler,
    PendingPrediction,
    SchedulerStats,
)
from repro.serving.sharded import ShardedScheduler

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionRejected",
    "AsyncBatchScheduler",
    "AsyncPrediction",
    "Autoscaler",
    "BatchScheduler",
    "ControlPlane",
    "Frontend",
    "HealthPolicy",
    "LoadMetrics",
    "MetricsSnapshot",
    "ModelLatency",
    "ModelRegistry",
    "Overload",
    "PendingPrediction",
    "ProcReplica",
    "ProcReplicaPool",
    "QueueFull",
    "RemoteEngineError",
    "ReplicaHealth",
    "ResultTimeout",
    "SchedulerStats",
    "ServingConfig",
    "ShardedScheduler",
    "SloPolicy",
    "WorkerDied",
    "serve",
]
