"""Deterministic fault injection for the serving stack.

The control plane (:mod:`repro.serving.controlplane`) exists because
real fleets fail: a replica's fabric drifts and its engine starts
raising, a neighbour steals its cores and flushes crawl.  Testing
that machinery needs failures that are *reproducible* — a soak test
must see the same failure on the same engine call every run — so this
module provides seeded wrappers around any batched MC engine:

- :class:`FailureSchedule` — a deterministic per-call failure plan,
  either an explicit set of failing call indices or a seeded
  Bernoulli draw per call (the "10 % flaky replica");
- :class:`FlakyEngine` — delegates to a wrapped engine, raising
  :class:`InjectedFault` on the calls its schedule marks;
- :class:`SlowEngine` — delegates after a fixed (or per-call) delay,
  the overload/latency-injection counterpart;
- :class:`PoisonEngine` — every call fails.  The shared test double
  for the failure-isolation regression tests (``test_serving_*``).

The wrappers expose only the scheduler-facing engine contract
(``mc_forward_batched``); everything else is forwarded to the wrapped
engine via ``__getattr__`` so a wrapped :class:`~repro.bayesian.
BayesianCim` still exposes its ledger etc.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional, Union

import numpy as np


class InjectedFault(RuntimeError):
    """An engine failure raised on purpose by a fault wrapper.

    Subclasses :class:`RuntimeError` so code (and tests) that treat
    engine failures generically keep working; fault-aware callers can
    catch this type specifically.
    """


class FailureSchedule:
    """Deterministic plan of which engine calls fail.

    Parameters
    ----------
    fail_calls:
        Explicit 0-based call indices that fail.  Takes precedence
        over ``rate`` for the listed calls (both may be combined).
    rate:
        Per-call failure probability, drawn from a seeded generator.
        Draws are made lazily but *by call index*, so asking about
        call 7 always gives the same answer regardless of query
        order — the schedule is a pure function of (rate, seed).
    seed:
        Seed of the Bernoulli stream backing ``rate``.
    """

    def __init__(self, fail_calls: Iterable[int] = (),
                 rate: float = 0.0, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.fail_calls = frozenset(int(i) for i in fail_calls)
        if any(i < 0 for i in self.fail_calls):
            raise ValueError("fail_calls indices must be non-negative")
        self.rate = rate
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._draws: List[bool] = []

    @classmethod
    def from_rate(cls, rate: float, seed: int = 0) -> "FailureSchedule":
        """A seeded i.i.d. failure plan (e.g. the 10 % flaky replica)."""
        return cls(rate=rate, seed=seed)

    def should_fail(self, call_index: int) -> bool:
        """Whether the ``call_index``-th engine call fails."""
        if call_index < 0:
            raise ValueError("call_index must be non-negative")
        if call_index in self.fail_calls:
            return True
        if self.rate == 0.0:
            return False
        while len(self._draws) <= call_index:
            self._draws.append(bool(self._rng.random() < self.rate))
        return self._draws[call_index]


class _EngineWrapper:
    """Shared delegation base: forward everything but the MC call."""

    def __init__(self, engine):
        self.engine = engine
        self.calls = 0

    def __getattr__(self, name):
        # Only reached for attributes not found on the wrapper itself;
        # keeps ledgers, configs, etc. of the wrapped engine reachable.
        return getattr(self.engine, name)


class FlakyEngine(_EngineWrapper):
    """An engine whose calls fail according to a seeded schedule.

    ``schedule`` may be a :class:`FailureSchedule` or a bare float,
    shorthand for ``FailureSchedule.from_rate(rate, seed)``.  Failed
    calls raise :class:`InjectedFault` *before* touching the wrapped
    engine, so its RNG state only advances on successful calls —
    exactly how a transport-level replica failure behaves.
    """

    def __init__(self, engine,
                 schedule: Union[FailureSchedule, float] = 0.1,
                 seed: int = 0):
        super().__init__(engine)
        if not isinstance(schedule, FailureSchedule):
            schedule = FailureSchedule.from_rate(float(schedule), seed)
        self.schedule = schedule
        self.failures = 0

    def mc_forward_batched(self, x, n_samples: int = 10,
                           chunk_passes: Optional[int] = None):
        call = self.calls
        self.calls += 1
        if self.schedule.should_fail(call):
            self.failures += 1
            raise InjectedFault(
                f"injected fault on engine call {call} "
                f"(schedule rate={self.schedule.rate})")
        return self.engine.mc_forward_batched(
            x, n_samples=n_samples, chunk_passes=chunk_passes)


class SlowEngine(_EngineWrapper):
    """An engine that sleeps before every call — latency injection.

    ``delay_s`` is a fixed delay or a ``call_index -> seconds``
    callable (e.g. to model a warm-up cliff or a degrading device).
    """

    def __init__(self, engine,
                 delay_s: Union[float, Callable[[int], float]] = 0.01,
                 sleep: Callable[[float], None] = time.sleep):
        super().__init__(engine)
        self.delay_s = delay_s
        self._sleep = sleep

    def mc_forward_batched(self, x, n_samples: int = 10,
                           chunk_passes: Optional[int] = None):
        call = self.calls
        self.calls += 1
        delay = (self.delay_s(call) if callable(self.delay_s)
                 else self.delay_s)
        if delay > 0:
            self._sleep(delay)
        return self.engine.mc_forward_batched(
            x, n_samples=n_samples, chunk_passes=chunk_passes)


class PoisonEngine:
    """An engine whose every call fails — the failure-isolation double.

    Deduplicates the ``_PoisonEngine`` classes that used to be copied
    across the serving test files.
    """

    def __init__(self, message: str = "boom: poisoned replica"):
        self.message = message
        self.calls = 0

    def mc_forward_batched(self, x, n_samples: int = 10,
                           chunk_passes: Optional[int] = None):
        self.calls += 1
        raise InjectedFault(self.message)


__all__ = [
    "FailureSchedule",
    "FlakyEngine",
    "InjectedFault",
    "PoisonEngine",
    "SlowEngine",
]
