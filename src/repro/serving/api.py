"""The unified serving API: one config, one factory, one protocol.

The serving stack grew one front-end per PR — ``BatchScheduler``
(sync), ``ShardedScheduler`` (threads), ``ProcReplicaPool`` (processes),
``AsyncBatchScheduler`` (asyncio) — and one constructor kwarg per
feature (``controlplane=``, ``registry=``, ``max_pending_rows=``,
``flush_interval=``, ...).  This module folds that surface into:

* :class:`ServingConfig` — every serving knob in one dataclass;
* :func:`serve` — ``serve(model_or_snapshot, backend=..., config=...)``
  builds the whole stack (engines/pool, scheduler, front-end) and
  returns a uniform :class:`Frontend`;
* :class:`Frontend` — the protocol every front-end satisfies:
  ``submit(x, *, model=, n_samples=, feature_shape=, deadline_s=)``,
  ``predict(...)`` (submit + flush + result), ``metrics()``,
  ``close()``, and context-manager use.  ``backend="async"`` returns
  the coroutine flavor (``await submit``/``predict``, ``await
  aclose()``, ``async with``).

The underlying constructors remain public and unchanged — ``serve`` is
a convenience roof, not a wall.  Legacy keyword arguments from earlier
releases (``controlplane=``, ``registry=``, ``max_pending_rows=``,
``flush_interval=``) are still accepted directly by :func:`serve` with
a :class:`DeprecationWarning`; move them into :class:`ServingConfig`.

>>> with serve(snapshot_path, backend="procs", config=ServingConfig(
...         n_samples=32, replicas=4)) as frontend:
...     result = frontend.predict(x)
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
import warnings
from typing import Optional, Protocol, runtime_checkable

from repro.serving.async_frontend import AsyncBatchScheduler
from repro.serving.procpool import ProcReplicaPool
from repro.serving.scheduler import BatchScheduler
from repro.serving.sharded import ShardedScheduler

__all__ = ["Frontend", "ServingConfig", "serve"]

# serve() kwargs accepted for one release with a DeprecationWarning,
# mapped to their ServingConfig field.
_LEGACY_KWARGS = {
    "controlplane": "controlplane",
    "registry": "registry",
    "max_pending_rows": "max_pending_rows",
    "flush_interval": "flush_interval",
}


@dataclasses.dataclass
class ServingConfig:
    """Every serving knob, in one place.

    The first block applies to every backend; later blocks are only
    read by the backends named in their comments (harmless elsewhere).
    """

    # -- batching / MC (all backends) ----------------------------------
    n_samples: int = 20
    max_batch: int = 64
    chunk_passes: Optional[int] = None
    feature_shape: Optional[tuple] = None
    flush_interval: Optional[float] = None
    max_retained_results: int = 1024

    # -- multi-tenancy / SLO machinery (all backends) ------------------
    registry: Optional[object] = None
    default_model: Optional[str] = None
    metrics: Optional[object] = None
    admission: Optional[object] = None
    controlplane: Optional[object] = None

    # -- replication ("threads" and "procs") ---------------------------
    replicas: int = 2
    parallel: bool = True

    # -- process pool ("procs") ----------------------------------------
    slots: int = 4
    slot_bytes: int = 1 << 20
    start_method: str = "spawn"

    # -- backpressure ("async") ----------------------------------------
    max_pending_rows: Optional[int] = None

    def scheduler_kwargs(self) -> dict:
        """The subset every ``BatchScheduler``-family constructor takes."""
        return dict(
            n_samples=self.n_samples, max_batch=self.max_batch,
            chunk_passes=self.chunk_passes,
            feature_shape=self.feature_shape,
            max_retained_results=self.max_retained_results,
            flush_interval=self.flush_interval, registry=self.registry,
            default_model=self.default_model, metrics=self.metrics,
            admission=self.admission, controlplane=self.controlplane)


@runtime_checkable
class Frontend(Protocol):
    """What :func:`serve` hands back, whatever the backend.

    ``backend="async"`` returns the coroutine flavor: ``submit`` and
    ``predict`` are ``async def``, ``aclose()`` replaces ``close()``
    and ``async with`` replaces ``with``.
    """

    backend: str

    def submit(self, x, *, model=None, n_samples=None,
               feature_shape=None, deadline_s=None):
        """Enqueue one request; returns a ticket with ``result()``."""

    def predict(self, x, *, model=None, n_samples=None,
                feature_shape=None, deadline_s=None):
        """Submit, flush, and resolve in one call."""

    def metrics(self):
        """The live load-metrics collector (or None when untracked)."""

    def close(self) -> None:
        """Tear down the stack this front-end owns."""


class _SyncFrontend:
    """Uniform facade over a (possibly sharded) batch scheduler.

    Owns whatever :func:`serve` built underneath — the scheduler, an
    optional :class:`~repro.serving.procpool.ProcReplicaPool`, and an
    optional temporary snapshot directory — and releases all of it in
    :meth:`close`.
    """

    def __init__(self, backend: str, scheduler, pool=None,
                 owned_tempdir: Optional[str] = None):
        self.backend = backend
        self.scheduler = scheduler
        self.pool = pool
        self._owned_tempdir = owned_tempdir

    def submit(self, x, *, model=None, n_samples=None,
               feature_shape=None, deadline_s=None):
        return self.scheduler.submit(
            x, n_samples, model, feature_shape=feature_shape,
            deadline_s=deadline_s)

    def predict(self, x, *, model=None, n_samples=None,
                feature_shape=None, deadline_s=None):
        ticket = self.submit(x, model=model, n_samples=n_samples,
                             feature_shape=feature_shape,
                             deadline_s=deadline_s)
        self.scheduler.flush()
        return ticket.result()

    def flush(self) -> int:
        return self.scheduler.flush()

    def metrics(self):
        return self.scheduler.metrics

    def close(self) -> None:
        self.scheduler.close()
        if self.pool is not None:
            self.pool.close()
        if self._owned_tempdir is not None:
            shutil.rmtree(self._owned_tempdir, ignore_errors=True)
            self._owned_tempdir = None

    def __enter__(self) -> "_SyncFrontend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<serving.Frontend backend={self.backend!r}>"


class _AsyncFrontend:
    """The coroutine flavor of :class:`Frontend`, over an
    :class:`~repro.serving.async_frontend.AsyncBatchScheduler`."""

    backend = "async"

    def __init__(self, frontend: AsyncBatchScheduler):
        self.frontend = frontend
        self.scheduler = frontend.scheduler

    async def submit(self, x, *, model=None, n_samples=None,
                     feature_shape=None, deadline_s=None):
        return await self.frontend.submit(
            x, n_samples, model, feature_shape=feature_shape,
            deadline_s=deadline_s)

    async def predict(self, x, *, model=None, n_samples=None,
                      feature_shape=None, deadline_s=None):
        ticket = await self.submit(x, model=model, n_samples=n_samples,
                                   feature_shape=feature_shape,
                                   deadline_s=deadline_s)
        await self.frontend.flush()
        return await ticket.result()

    async def flush(self) -> int:
        return await self.frontend.flush()

    def metrics(self):
        return self.frontend.metrics

    async def aclose(self) -> None:
        await self.frontend.aclose()

    async def __aenter__(self) -> "_AsyncFrontend":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    def __repr__(self) -> str:
        return "<serving.Frontend backend='async'>"


# ----------------------------------------------------------------------
# Source resolution
# ----------------------------------------------------------------------
def _resolve_source(model_or_snapshot, config: ServingConfig):
    """Classify what the caller handed us.

    Returns ``(kind, value)`` with kind in ``{"engine", "snapshot",
    "path", "factory", "registry"}``.
    """
    from repro.cim.snapshot import DeploymentSnapshot

    if model_or_snapshot is None:
        if config.registry is None or config.default_model is None:
            raise ValueError(
                "serve(None, ...) needs config.registry plus "
                "config.default_model to route requests")
        return "registry", None
    if isinstance(model_or_snapshot, DeploymentSnapshot):
        return "snapshot", model_or_snapshot
    if isinstance(model_or_snapshot, (str, os.PathLike)):
        return "path", os.fspath(model_or_snapshot)
    if hasattr(model_or_snapshot, "mc_forward_batched"):
        return "engine", model_or_snapshot
    if callable(model_or_snapshot):
        return "factory", model_or_snapshot
    raise TypeError(
        f"cannot serve a {type(model_or_snapshot).__name__}: expected "
        "an engine, a DeploymentSnapshot (or its path), a zero-arg "
        "factory, or None with a registry-backed config")


def _engine_factory(kind: str, value):
    """A build-one-replica callable for the in-process backends."""
    from repro.cim.snapshot import DeploymentSnapshot

    if kind == "path":
        snapshot = DeploymentSnapshot.load_cached(value)
        return snapshot.build
    if kind == "snapshot":
        return value.build
    if kind == "factory":
        return value
    if kind == "engine":
        def rebuild(engine=value):
            # Replicating a live engine goes through capture so every
            # replica continues the same stream positions (the
            # bit-exactness contract snapshots pin).
            return DeploymentSnapshot.capture(engine).build()
        return rebuild
    raise ValueError(f"no engine factory for source kind {kind!r}")


def _proc_sources(kind: str, value):
    """Procpool boot spec + an owned tempdir (if we had to persist).

    Workers are separate processes, so live objects cannot cross: an
    engine or in-memory snapshot is persisted to a temporary artifact
    directory the front-end owns (and removes on ``close``).
    """
    from repro.cim.snapshot import DeploymentSnapshot

    if kind == "path":
        return ("snapshot", value), None
    if kind == "factory":
        return ("factory", value), None
    if kind == "snapshot":
        snapshot = value
    elif kind == "engine":
        snapshot = DeploymentSnapshot.capture(value)
    else:
        raise ValueError(f"no procpool source for kind {kind!r}")
    tempdir = tempfile.mkdtemp(prefix="repro-serve-")
    path = os.path.join(tempdir, "snapshot")
    snapshot.save(path)
    return ("snapshot", path), tempdir


# ----------------------------------------------------------------------
# The factory
# ----------------------------------------------------------------------
def serve(model_or_snapshot=None, *,
          backend: str = "sync",
          config: Optional[ServingConfig] = None,
          **legacy) -> object:
    """Build a serving stack and return its :class:`Frontend`.

    Parameters
    ----------
    model_or_snapshot:
        A live batched-MC engine, a
        :class:`~repro.cim.snapshot.DeploymentSnapshot` (or a path to
        a saved one), a zero-arg engine factory, or ``None`` to serve
        purely from ``config.registry``/``config.default_model``.
    backend:
        ``"sync"`` — one engine, one :class:`BatchScheduler`;
        ``"threads"`` — ``config.replicas`` in-process replicas under a
        :class:`ShardedScheduler`;
        ``"procs"`` — ``config.replicas`` worker *processes* under a
        :class:`~repro.serving.procpool.ProcReplicaPool` (shared-memory
        row transport; snapshots/engines are persisted to a temporary
        artifact the front-end owns);
        ``"async"`` — an :class:`AsyncBatchScheduler` coroutine
        front-end (returns the async :class:`Frontend` flavor).
    config:
        A :class:`ServingConfig`; defaults apply when omitted.
    **legacy:
        ``controlplane=``, ``registry=``, ``max_pending_rows=``,
        ``flush_interval=`` are accepted for one release with a
        :class:`DeprecationWarning` and folded into ``config``.
    """
    config = dataclasses.replace(config) if config is not None \
        else ServingConfig()
    for key in list(legacy):
        field = _LEGACY_KWARGS.get(key)
        if field is None:
            raise TypeError(f"serve() got an unexpected keyword "
                            f"argument {key!r}")
        warnings.warn(
            f"serve({key}=...) is deprecated; set ServingConfig."
            f"{field} instead", DeprecationWarning, stacklevel=2)
        setattr(config, field, legacy.pop(key))

    kind, value = _resolve_source(model_or_snapshot, config)

    if backend == "sync":
        engine = None if kind == "registry" \
            else _engine_factory(kind, value)()
        scheduler = BatchScheduler(engine, **config.scheduler_kwargs())
        return _SyncFrontend("sync", scheduler)

    if backend == "threads":
        if kind == "registry":
            raise ValueError(
                "backend='threads' replicates one model; serve a "
                "registry through backend='sync' or 'async', or pass "
                "the model to replicate explicitly")
        factory = _engine_factory(kind, value)
        engines = [factory() for _ in range(config.replicas)]
        scheduler = ShardedScheduler(engines, parallel=config.parallel,
                                     **config.scheduler_kwargs())
        return _SyncFrontend("threads", scheduler)

    if backend == "procs":
        if kind == "registry":
            pool = ProcReplicaPool.from_registry(
                config.registry, workers=config.replicas,
                slots=config.slots, slot_bytes=config.slot_bytes,
                start_method=config.start_method)
            tempdir = None
        else:
            source, tempdir = _proc_sources(kind, value)
            pool = ProcReplicaPool(
                {None: source}, workers=config.replicas,
                slots=config.slots, slot_bytes=config.slot_bytes,
                start_method=config.start_method)
        scheduler = ShardedScheduler(pool.replicas,
                                     parallel=config.parallel,
                                     **config.scheduler_kwargs())
        return _SyncFrontend("procs", scheduler, pool=pool,
                             owned_tempdir=tempdir)

    if backend == "async":
        engine = None if kind == "registry" \
            else _engine_factory(kind, value)()
        inner_kwargs = config.scheduler_kwargs()
        # The async front-end owns the flush cadence and the metrics
        # collector; the inner scheduler keeps the batching knobs.
        inner_kwargs.pop("flush_interval")
        inner_kwargs.pop("metrics")
        scheduler = BatchScheduler(engine, **inner_kwargs)
        frontend = AsyncBatchScheduler(
            scheduler, flush_interval=config.flush_interval,
            max_pending_rows=config.max_pending_rows,
            metrics=config.metrics)
        return _AsyncFrontend(frontend)

    raise ValueError(
        f"unknown backend {backend!r}: expected 'sync', 'threads', "
        f"'procs', or 'async'")
