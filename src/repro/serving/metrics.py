"""Serving load metrics: queue depth, flush latency, throughput.

:class:`LoadMetrics` is the observability half of the autoscaling
loop: the serving front-ends feed it one record per engine flush
(rows, coalesced request count, wall latency, and — for sharded
schedulers — per-replica row loads) plus queue-depth observations on
every submit; :meth:`LoadMetrics.snapshot` condenses them into the
:class:`MetricsSnapshot` the :class:`~repro.serving.autoscale.
Autoscaler` policies read.

Everything is windowed or exponentially weighted so a long-lived
service sees *current* load, not its lifetime average:

- flush latencies keep the last ``window`` entries (p50/p95 over
  that ring);
- throughput (rows/sec) counts completions inside the trailing
  ``throughput_window_s`` seconds;
- utilization is an EWMA of each flush's busy fraction — flush wall
  time over the gap since the previous flush finished — so it decays
  toward 0 when traffic drains and saturates toward 1 when flushes
  run back-to-back.

The collector is thread-safe (flush records arrive from engine worker
threads, snapshots from the event loop) and takes an injectable clock
for deterministic tests.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class ModelLatency:
    """Per-model latency/volume condensation (multi-tenant read-out).

    One serving fleet hosting several registered models used to pool
    every tenant's flush latencies into one p95; these windows keep
    them separable — a slow segmenter cannot hide behind a fast MLP.
    """

    flushes: int = 0
    requests: int = 0
    rows: int = 0
    p50_latency_s: float = 0.0
    p95_latency_s: float = 0.0


@dataclasses.dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time condensation of one :class:`LoadMetrics`.

    ``utilization`` and ``queue_depth`` (pending rows at the last
    observation) are the autoscaler's primary signals; the latency
    percentiles and ``rows_per_s`` are the SLO-facing read-outs.
    ``per_model`` splits the latency windows by the ``model_id`` each
    flush was recorded under (requests that named no model are pooled
    into the top-level percentiles only).
    """

    flushes: int = 0
    requests: int = 0
    rows: int = 0
    queue_depth: int = 0          # pending rows at last observation
    max_queue_depth: int = 0
    mean_flush_rows: float = 0.0
    last_flush_rows: int = 0
    p50_latency_s: float = 0.0
    p95_latency_s: float = 0.0
    rows_per_s: float = 0.0
    utilization: float = 0.0      # EWMA busy fraction in [0, 1]
    replica_rows: Tuple[int, ...] = ()   # cumulative rows per replica
    per_model: Mapping[str, ModelLatency] = dataclasses.field(
        default_factory=dict, compare=False)

    def per_replica_queue(self, n_replicas: int) -> float:
        """Pending rows per replica (the scale-up watermark input)."""
        return self.queue_depth / max(n_replicas, 1)


def _percentile(sorted_values: List[float], q: float) -> float:
    """Linearly-interpolated percentile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] + frac * (sorted_values[hi] - sorted_values[lo])


class LoadMetrics:
    """Collector for serving-side load signals.

    Parameters
    ----------
    window:
        Ring-buffer size for flush latency / flush size history (the
        percentile base).
    ewma_alpha:
        Smoothing factor of the utilization EWMA; higher reacts
        faster, lower rides out bursts.
    throughput_window_s:
        Trailing window over which ``rows_per_s`` is computed.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(self, window: int = 256, ewma_alpha: float = 0.25,
                 throughput_window_s: float = 2.0,
                 clock: Callable[[], float] = time.monotonic):
        if window < 1:
            raise ValueError("window must be positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if throughput_window_s <= 0:
            raise ValueError("throughput_window_s must be positive")
        self.window = window
        self.ewma_alpha = ewma_alpha
        self.throughput_window_s = throughput_window_s
        self._clock = clock
        self._lock = threading.Lock()
        self._flushes = 0
        self._requests = 0
        self._rows = 0
        self._queue_depth = 0
        self._max_queue_depth = 0
        self._last_flush_rows = 0
        self._latencies: deque = deque(maxlen=window)
        self._flush_rows: deque = deque(maxlen=window)
        self._completions: deque = deque()     # (t_end, rows)
        self._utilization = 0.0
        self._last_flush_end: Optional[float] = None
        self._replica_rows: List[int] = []
        # model_id -> [latency deque, flushes, requests, rows]
        self._per_model: Dict[str, list] = {}

    # ------------------------------------------------------------------
    def observe_queue_depth(self, rows: int) -> None:
        """Record the pending-row count (called on submit/flush)."""
        with self._lock:
            self._queue_depth = rows
            self._max_queue_depth = max(self._max_queue_depth, rows)

    def record_flush(self, rows: int, n_requests: int, latency_s: float,
                     replica_loads: Optional[Sequence[int]] = None,
                     model_id: Optional[str] = None) -> None:
        """Record one completed engine flush.

        ``replica_loads`` is the per-replica row split of this flush
        (a sharded scheduler's ``last_shard_loads``); cumulative
        per-replica totals appear in the snapshot's ``replica_rows``.
        ``model_id`` additionally files the flush under that model's
        own latency window (the multi-tenant ``per_model`` read-out);
        the top-level percentiles always include it.
        """
        now = self._clock()
        with self._lock:
            self._flushes += 1
            self._requests += n_requests
            self._rows += rows
            self._last_flush_rows = rows
            self._latencies.append(max(latency_s, 0.0))
            self._flush_rows.append(rows)
            self._completions.append((now, rows))
            self._trim_completions_locked(now)
            if self._last_flush_end is None:
                inst = 1.0
            else:
                idle = now - self._last_flush_end
                if idle > self.throughput_window_s:
                    # Resuming after a drained period: the pre-idle
                    # EWMA is stale (snapshot() already reported 0
                    # during the gap) — restart from drained, or the
                    # first lone request after a hot spell would
                    # read as high utilization and trigger a
                    # spurious scale-up.
                    self._utilization = 0.0
                elapsed = max(idle, latency_s, 1e-9)
                inst = min(1.0, latency_s / elapsed)
            self._utilization += self.ewma_alpha * (inst - self._utilization)
            self._last_flush_end = now
            if replica_loads:
                while len(self._replica_rows) < len(replica_loads):
                    self._replica_rows.append(0)
                for i, load in enumerate(replica_loads):
                    self._replica_rows[i] += int(load)
            if model_id is not None:
                entry = self._per_model.get(model_id)
                if entry is None:
                    entry = [deque(maxlen=self.window), 0, 0, 0]
                    self._per_model[model_id] = entry
                entry[0].append(max(latency_s, 0.0))
                entry[1] += 1
                entry[2] += n_requests
                entry[3] += rows

    def _trim_completions_locked(self, now: float) -> None:
        horizon = now - self.throughput_window_s
        while self._completions and self._completions[0][0] <= horizon:
            self._completions.popleft()

    # ------------------------------------------------------------------
    def p95_latency_s(self) -> float:
        """The current p95 flush latency, without a full snapshot.

        The control plane reads this on every submit (admission) and
        every flush group (adaptive-T); it sorts only the latency
        ring, skipping the snapshot's throughput/utilization work.
        """
        with self._lock:
            return _percentile(sorted(self._latencies), 0.95)

    def snapshot(self) -> MetricsSnapshot:
        """Condense the current state into a :class:`MetricsSnapshot`."""
        now = self._clock()
        with self._lock:
            self._trim_completions_locked(now)
            window_rows = sum(rows for _, rows in self._completions)
            latencies = sorted(self._latencies)
            mean_rows = (sum(self._flush_rows) / len(self._flush_rows)
                         if self._flush_rows else 0.0)
            utilization = self._utilization
            # An idle collector decays toward zero between flushes:
            # scale the EWMA by how stale the last flush is relative
            # to the throughput window, else a drained service would
            # report its last busy reading forever.
            if self._last_flush_end is not None:
                idle = now - self._last_flush_end
                if idle > self.throughput_window_s:
                    utilization = 0.0
            per_model = {
                model_id: ModelLatency(
                    flushes=entry[1], requests=entry[2], rows=entry[3],
                    p50_latency_s=_percentile(sorted(entry[0]), 0.50),
                    p95_latency_s=_percentile(sorted(entry[0]), 0.95))
                for model_id, entry in self._per_model.items()}
            return MetricsSnapshot(
                flushes=self._flushes,
                requests=self._requests,
                rows=self._rows,
                queue_depth=self._queue_depth,
                max_queue_depth=self._max_queue_depth,
                mean_flush_rows=mean_rows,
                last_flush_rows=self._last_flush_rows,
                p50_latency_s=_percentile(latencies, 0.50),
                p95_latency_s=_percentile(latencies, 0.95),
                rows_per_s=window_rows / self.throughput_window_s,
                utilization=utilization,
                replica_rows=tuple(self._replica_rows),
                per_model=per_model,
            )
