"""Process-backed replica pool with shared-memory row transport.

Every engine in this reproduction is pure NumPy, so the threaded
:class:`~repro.serving.sharded.ShardedScheduler` replicas contend on
one GIL and aggregate throughput flattens near a single core.  This
module moves each replica into its own worker *process*:

* **Workers boot from artifacts, not pickles of live engines.**  A
  worker receives only a :class:`~repro.cim.snapshot.DeploymentSnapshot`
  path (or a picklable zero-arg factory) and rehydrates its own warm
  engine — plan caches, packed bitplanes, RNG stream positions — via
  the process-local :meth:`~repro.cim.snapshot.DeploymentSnapshot.
  load_cached` fast path.  N workers built from one snapshot produce
  identical prediction streams, which is what makes the pool
  bit-identical to threaded sharding (see *Equivalence* below).
* **Rows travel through shared memory, not the pipe.**  Each worker
  owns a paired set of fixed-slot ``multiprocessing.shared_memory``
  ring buffers: request rows are written zero-copy into a request
  slot, result sample tensors come back in the paired result slot,
  and only a small header (command, slot index, shape, dtype, model
  id, T, chunk size) crosses the duplex ``Pipe``.  Payloads larger
  than a slot transparently fall back to pickle-over-pipe and are
  counted in ``pool.stats["pipe_fallbacks"]``.
* **The proxies speak the existing replica interface.**  A
  :class:`ProcReplica` implements ``mc_forward_batched`` (plus a
  ``ledger`` view), so ``ShardedScheduler(pool.replicas, ...)``,
  :class:`~repro.serving.autoscale.Autoscaler` (with
  ``pool.spawn_replica`` as the engine factory), and
  :class:`~repro.serving.controlplane.ControlPlane` quarantine all
  work unchanged on top of worker processes.

Equivalence
-----------
``ShardedScheduler`` partitions a coalesced batch greedily and
deterministically in arrival order, then slices every request's rows
back out with ``PredictiveResult.from_samples``.  A :class:`ProcReplica`
transports the *raw sample tensor* and rebuilds the result the same
way, and snapshot-built engines continue the captured RNG streams
exactly — so a k-worker pool serves samples and ledger totals
bit-identical to k threaded replicas built from the same snapshot.

Failure model
-------------
A dead worker (crash, kill, OOM) surfaces as
:class:`~repro.serving.errors.WorkerDied` on the next call of any
proxy bound to it; under a sharded scheduler that fails only the dead
replica's own shard tickets, and with a control plane attached the
replica is quarantined and a warm spare promoted — sibling tickets
never wedge, because worker death closes the pipe and the waiting
``recv`` returns immediately.  An exception raised by the engine
*inside* a healthy worker comes back as
:class:`~repro.serving.errors.RemoteEngineError` carrying the remote
traceback; the worker itself keeps serving.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.bayesian.base import PredictiveResult
from repro.cim.ledger import OpLedger
from repro.serving.errors import RemoteEngineError, WorkerDied

__all__ = ["ProcReplica", "ProcReplicaPool"]

# A model source crossing the process boundary: ("snapshot", path) or
# ("factory", picklable zero-arg callable).
_Source = tuple


def _normalize_source(source) -> _Source:
    if isinstance(source, tuple) and len(source) == 2 \
            and source[0] in ("snapshot", "factory"):
        return source
    if isinstance(source, str):
        return ("snapshot", source)
    if callable(source):
        return ("factory", source)
    raise TypeError(
        f"model source must be a snapshot path or a zero-arg factory, "
        f"got {type(source).__name__}")


def _boot_engine(source: _Source):
    kind, value = source
    if kind == "snapshot":
        from repro.cim.snapshot import DeploymentSnapshot
        return DeploymentSnapshot.load_cached(value).build()
    return value()


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(conn, sources: Dict[Optional[str], _Source],
                 req_name: str, res_name: str,
                 slots: int, slot_bytes: int) -> None:
    """Entry point of one replica worker (runs in a child process)."""
    import traceback
    from multiprocessing import shared_memory

    # Attaching registers the names with the resource tracker the
    # worker shares with its parent — a duplicate set-add, which is
    # exactly right: the parent owns both blocks and unregisters them
    # once, at unlink time.
    req_shm = shared_memory.SharedMemory(name=req_name)
    res_shm = shared_memory.SharedMemory(name=res_name)

    try:
        engines = {mid: _boot_engine(src) for mid, src in sources.items()}
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc()))
        except OSError:
            pass
        return
    conn.send(("ready",))

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break                       # parent gone
            cmd = msg[0]
            if cmd == "close":
                break
            if cmd == "ping":
                conn.send(("pong",))
                continue
            if cmd == "ledger":
                engine = engines[msg[1]]
                ledger = getattr(engine, "ledger", None)
                conn.send(("ledger",
                           None if ledger is None else dict(ledger.counts)))
                continue
            if cmd == "mc":
                (_, slot, shape, dtype, n_samples, chunk_passes,
                 model_id, via_shm, payload) = msg
                try:
                    if via_shm:
                        x = np.frombuffer(
                            req_shm.buf, dtype=np.dtype(dtype),
                            count=int(np.prod(shape)),
                            offset=slot * slot_bytes).reshape(shape)
                    else:
                        x = payload
                    result = engines[model_id].mc_forward_batched(
                        x, n_samples=n_samples, chunk_passes=chunk_passes)
                    samples = np.ascontiguousarray(result.samples)
                    del x
                    if samples.nbytes <= slot_bytes:
                        out = np.frombuffer(
                            res_shm.buf, dtype=samples.dtype,
                            count=samples.size,
                            offset=slot * slot_bytes).reshape(samples.shape)
                        out[...] = samples
                        del out
                        conn.send(("ok", slot, samples.shape,
                                   samples.dtype.str, True, None))
                    else:
                        conn.send(("ok", slot, samples.shape,
                                   samples.dtype.str, False, samples))
                except Exception:
                    conn.send(("err", traceback.format_exc()))
                continue
            conn.send(("err", f"unknown procpool command {cmd!r}"))
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):
        pass
    finally:
        for shm in (req_shm, res_shm):
            try:
                shm.close()
            except BufferError:             # a stray view still alive
                pass


# ----------------------------------------------------------------------
# Parent-side worker record + replica proxy
# ----------------------------------------------------------------------
class _Worker:
    """Parent-side handle of one worker process and its slot rings."""

    __slots__ = ("index", "process", "conn", "req_shm", "res_shm",
                 "slots", "slot_bytes", "lock", "alive", "_slot",
                 "_proxies")

    def __init__(self, index, process, conn, req_shm, res_shm,
                 slots, slot_bytes):
        self.index = index
        self.process = process
        self.conn = conn
        self.req_shm = req_shm
        self.res_shm = res_shm
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.lock = threading.Lock()        # serializes this pipe
        self.alive = True
        self._slot = 0
        self._proxies: Dict[Optional[str], "ProcReplica"] = {}

    def next_slot(self) -> int:
        slot = self._slot
        self._slot = (self._slot + 1) % self.slots
        return slot


class ProcReplica:
    """Proxy engine bound to one worker process (and one model id).

    Implements the replica interface the schedulers already speak —
    ``mc_forward_batched(x, n_samples=..., chunk_passes=...)`` — by
    shipping the rows through the worker's shared-memory request slot
    and rebuilding a :class:`~repro.bayesian.base.PredictiveResult`
    from the sample tensor in the paired result slot.  Calls on one
    worker are serialized by the worker's lock; distinct workers run
    genuinely in parallel (separate processes, no GIL sharing).
    """

    def __init__(self, pool: "ProcReplicaPool", worker: _Worker,
                 model_id: Optional[str] = None):
        self._pool = pool
        self._worker = worker
        self.model_id = model_id

    # -- replica interface ---------------------------------------------
    def mc_forward_batched(self, x: np.ndarray, n_samples: int = 20,
                           chunk_passes: Optional[int] = None
                           ) -> PredictiveResult:
        worker = self._worker
        x = np.ascontiguousarray(x)
        with worker.lock:
            if not worker.alive:
                raise WorkerDied(
                    f"procpool worker {worker.index} is dead")
            slot = worker.next_slot()
            via_shm = x.nbytes <= worker.slot_bytes
            try:
                if via_shm:
                    dst = np.frombuffer(
                        worker.req_shm.buf, dtype=x.dtype, count=x.size,
                        offset=slot * worker.slot_bytes).reshape(x.shape)
                    dst[...] = x
                    del dst
                    self._pool.stats["shm_requests"] += 1
                    worker.conn.send(("mc", slot, x.shape, x.dtype.str,
                                      n_samples, chunk_passes,
                                      self.model_id, True, None))
                else:
                    self._pool.stats["pipe_fallbacks"] += 1
                    worker.conn.send(("mc", slot, x.shape, x.dtype.str,
                                      n_samples, chunk_passes,
                                      self.model_id, False, x))
                reply = worker.conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError,
                    OSError):
                self._pool._mark_dead(worker)
                raise WorkerDied(
                    f"procpool worker {worker.index} died mid-request"
                ) from None
            if reply[0] == "err":
                raise RemoteEngineError(
                    f"engine call failed in procpool worker "
                    f"{worker.index}:\n{reply[1]}")
            _, rslot, shape, dtype, via, payload = reply
            if via:
                # Copy out of the slot before releasing the lock: the
                # ring reuses this slot on a later call.
                samples = np.frombuffer(
                    worker.res_shm.buf, dtype=np.dtype(dtype),
                    count=int(np.prod(shape)),
                    offset=rslot * worker.slot_bytes
                ).reshape(shape).copy()
            else:
                samples = payload
        self._pool.stats["mc_calls"] += 1
        return PredictiveResult.from_samples(samples)

    # -- telemetry ------------------------------------------------------
    def ledger_totals(self) -> Optional[Dict[str, int]]:
        """The worker-side engine's op-ledger counts (``None`` for
        engines without a ledger, e.g. the software segmenter)."""
        reply = self._rpc(("ledger", self.model_id))
        return reply[1]

    @property
    def ledger(self) -> OpLedger:
        """A *copy* of the remote ledger as an :class:`OpLedger`
        (mutating it does not touch the worker)."""
        ledger = OpLedger()
        counts = self.ledger_totals()
        if counts:
            for op, n in counts.items():
                ledger.counts[op] = n
        return ledger

    @property
    def alive(self) -> bool:
        return self._worker.alive and self._worker.process.is_alive()

    @property
    def worker_index(self) -> int:
        return self._worker.index

    def ping(self) -> bool:
        return self._rpc(("ping",))[0] == "pong"

    def _rpc(self, msg: tuple) -> tuple:
        worker = self._worker
        with worker.lock:
            if not worker.alive:
                raise WorkerDied(
                    f"procpool worker {worker.index} is dead")
            try:
                worker.conn.send(msg)
                reply = worker.conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError,
                    OSError):
                self._pool._mark_dead(worker)
                raise WorkerDied(
                    f"procpool worker {worker.index} died mid-request"
                ) from None
        if reply[0] == "err":
            raise RemoteEngineError(
                f"procpool worker {worker.index} request failed:\n"
                f"{reply[1]}")
        return reply

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return (f"ProcReplica(worker={self._worker.index}, "
                f"model={self.model_id!r}, {state})")


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class ProcReplicaPool:
    """A fleet of process-backed replica workers.

    Parameters
    ----------
    sources:
        What each worker hosts: a single model source, or a dict
        mapping model ids to sources for multi-tenant workers (the
        ``None`` key is the default route).  A source is a
        :class:`~repro.cim.snapshot.DeploymentSnapshot` directory path
        or a *picklable* zero-arg engine factory (workers are spawned
        as fresh interpreters, so lambdas/closures won't cross).
    workers:
        Worker processes to start (each hosts every model in
        ``sources``).
    slots / slot_bytes:
        Ring-buffer geometry per direction per worker.  Payloads over
        ``slot_bytes`` fall back to pickle-over-pipe (counted in
        ``stats["pipe_fallbacks"]``, never an error).
    start_method:
        ``multiprocessing`` start method; the default ``"spawn"``
        gives every worker a fresh interpreter, which is exactly the
        cold-boot path the snapshot artifact exists for.

    Use ``pool.replicas`` with a sharded scheduler, and
    ``pool.spawn_replica`` as an autoscaler's engine factory::

        pool = ProcReplicaPool.from_snapshot(path, workers=4)
        scheduler = ShardedScheduler(pool.replicas, n_samples=32)
        scaler = Autoscaler(scheduler, pool.spawn_replica, warm_spares=1)

    The pool owns every worker process and both shared-memory rings;
    ``close()`` (or the context manager) tears all of it down.
    """

    def __init__(self, sources, *, workers: int = 2, slots: int = 4,
                 slot_bytes: int = 1 << 20,
                 start_method: str = "spawn"):
        if workers < 1:
            raise ValueError("workers must be positive")
        if slots < 1:
            raise ValueError("slots must be positive")
        if slot_bytes < 1024:
            raise ValueError("slot_bytes must be at least 1 KiB")
        if not isinstance(sources, dict):
            sources = {None: sources}
        if not sources:
            raise ValueError("sources must name at least one model")
        self._sources: Dict[Optional[str], _Source] = {
            mid: _normalize_source(src) for mid, src in sources.items()}
        self._default_model = (
            None if None in self._sources else next(iter(self._sources)))
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._workers: List[_Worker] = []
        self._worker_seq = 0
        self._closed = False
        self.stats = {"mc_calls": 0, "shm_requests": 0,
                      "pipe_fallbacks": 0, "worker_deaths": 0,
                      "workers_spawned": 0}
        try:
            for _ in range(workers):
                self._spawn_worker()
        except BaseException:
            self.close()
            raise

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_snapshot(cls, path: str, **kwargs) -> "ProcReplicaPool":
        """Pool whose workers rehydrate one saved snapshot artifact."""
        return cls({None: ("snapshot", path)}, **kwargs)

    @classmethod
    def from_factory(cls, factory: Callable[[], object],
                     **kwargs) -> "ProcReplicaPool":
        """Pool whose workers build engines from a picklable factory
        (the route for engines without snapshot support, e.g. the
        segmenter)."""
        return cls({None: ("factory", factory)}, **kwargs)

    @classmethod
    def from_registry(cls, registry, model_ids=None,
                      **kwargs) -> "ProcReplicaPool":
        """Pool hosting registered models, booted from their artifacts.

        Snapshot-registered models ship only their artifact path to
        the workers; factory-registered models ship the factory (which
        must pickle).  Engine-registered models cannot cross a process
        boundary and are rejected.
        """
        if model_ids is None:
            model_ids = registry.model_ids
        sources: Dict[Optional[str], _Source] = {}
        for model_id in model_ids:
            path = registry.snapshot_path(model_id)
            if path is not None:
                sources[model_id] = ("snapshot", path)
                continue
            factory = registry._require(model_id).factory
            sources[model_id] = ("factory", factory)
        return cls(sources, **kwargs)

    # -- replica access -------------------------------------------------
    @property
    def replicas(self) -> List[ProcReplica]:
        """One default-route proxy per live worker (stable objects —
        safe as control-plane keys)."""
        with self._lock:
            return [self._proxy(w, self._default_model)
                    for w in self._workers if w.alive]

    def replica(self, index: int,
                model: Optional[str] = None) -> ProcReplica:
        """The proxy for worker ``index`` and ``model`` (default route
        when ``model`` is None and a default exists)."""
        if model is None:
            model = self._default_model
        if model not in self._sources:
            raise KeyError(
                f"model {model!r} is not hosted by this pool "
                f"(known: {sorted(k for k in self._sources if k)})")
        with self._lock:
            for worker in self._workers:
                if worker.index == index:
                    return self._proxy(worker, model)
        raise KeyError(f"no worker with index {index}")

    def spawn_replica(self, model: Optional[str] = None) -> ProcReplica:
        """Start a fresh worker and return its proxy.

        Zero-arg-callable compatible with
        :class:`~repro.serving.autoscale.Autoscaler`'s
        ``engine_factory`` — warm spares and scale-ups each get their
        own process.
        """
        if model is None:
            model = self._default_model
        worker = self._spawn_worker()
        return self._proxy(worker, model)

    @property
    def n_workers(self) -> int:
        with self._lock:
            return len(self._workers)

    @property
    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers if w.alive)

    @property
    def model_ids(self) -> List[Optional[str]]:
        return list(self._sources)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and release both shm rings per worker."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
        for worker in workers:
            with worker.lock:
                if worker.alive:
                    try:
                        worker.conn.send(("close",))
                    except (BrokenPipeError, OSError):
                        pass
                worker.alive = False
        for worker in workers:
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
            try:
                worker.conn.close()
            except OSError:
                pass
            for shm in (worker.req_shm, worker.res_shm):
                try:
                    shm.close()
                except BufferError:
                    pass
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass

    def __enter__(self) -> "ProcReplicaPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- internals ------------------------------------------------------
    def _proxy(self, worker: _Worker,
               model: Optional[str]) -> ProcReplica:
        proxy = worker._proxies.get(model)
        if proxy is None:
            proxy = ProcReplica(self, worker, model)
            worker._proxies[model] = proxy
        return proxy

    def _spawn_worker(self) -> _Worker:
        from multiprocessing import shared_memory
        if self._closed:
            raise RuntimeError("pool is closed")
        size = self.slots * self.slot_bytes
        req_shm = shared_memory.SharedMemory(create=True, size=size)
        res_shm = shared_memory.SharedMemory(create=True, size=size)
        parent_conn, child_conn = self._ctx.Pipe()
        with self._lock:
            index = self._worker_seq
            self._worker_seq += 1
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._sources, req_shm.name, res_shm.name,
                  self.slots, self.slot_bytes),
            daemon=True, name=f"procpool-worker-{index}")
        try:
            process.start()
            child_conn.close()
            reply = parent_conn.recv()      # boot handshake
            if reply[0] != "ready":
                raise RuntimeError(
                    f"procpool worker {index} failed to boot:\n"
                    f"{reply[1] if len(reply) > 1 else reply!r}")
        except BaseException:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
            parent_conn.close()
            for shm in (req_shm, res_shm):
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
            raise
        worker = _Worker(index, process, parent_conn, req_shm, res_shm,
                         self.slots, self.slot_bytes)
        with self._lock:
            self._workers.append(worker)
            self.stats["workers_spawned"] += 1
        return worker

    def _mark_dead(self, worker: _Worker) -> None:
        # Caller holds worker.lock.
        if worker.alive:
            worker.alive = False
            self.stats["worker_deaths"] += 1
