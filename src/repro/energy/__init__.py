"""Energy, latency and storage accounting for CIM deployments."""

from repro.energy.params import (
    DEFAULT_ENERGY,
    DEFAULT_LATENCY,
    EnergyParams,
    LatencyParams,
)
from repro.energy.model import (
    LayerSpec,
    NetworkSpec,
    dropout_subsystem_energy,
    forward_pass_ledger,
    lenet_like,
    method_energy_per_image,
    method_extra_ops,
    method_rng_bits,
    mlp_spec,
    price_ledger,
    storage_bits,
)
from repro.energy.latency import (
    AreaModel,
    LatencyModel,
    method_area,
    method_latency_per_image,
)
from repro.energy.report import format_energy, render_breakdown, render_table

__all__ = [
    "EnergyParams",
    "LatencyParams",
    "DEFAULT_ENERGY",
    "DEFAULT_LATENCY",
    "LayerSpec",
    "NetworkSpec",
    "lenet_like",
    "mlp_spec",
    "forward_pass_ledger",
    "method_rng_bits",
    "method_extra_ops",
    "method_energy_per_image",
    "dropout_subsystem_energy",
    "storage_bits",
    "price_ledger",
    "LatencyModel",
    "AreaModel",
    "method_latency_per_image",
    "method_area",
    "format_energy",
    "render_table",
    "render_breakdown",
]
