"""Text rendering for energy/accuracy comparison tables."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_energy(joules: float) -> str:
    """Human-readable energy with an appropriate SI prefix."""
    if joules <= 0:
        return "0 J"
    for scale, unit in ((1e-3, "mJ"), (1e-6, "µJ"), (1e-9, "nJ"),
                        (1e-12, "pJ"), (1e-15, "fJ")):
        if joules >= scale:
            return f"{joules / scale:.2f} {unit}"
    return f"{joules:.2e} J"


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Monospace table renderer (the benchmark harness output format)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in str_rows))
              if str_rows else len(headers[i])
              for i in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_breakdown(breakdown: Dict[str, float], title: str = "") -> str:
    """Per-operation energy breakdown, largest first."""
    total = sum(breakdown.values())
    rows: List[List[str]] = []
    for op, energy in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        share = 100.0 * energy / total if total else 0.0
        rows.append([op, format_energy(energy), f"{share:5.1f} %"])
    return render_table(["operation", "energy", "share"], rows, title=title)
