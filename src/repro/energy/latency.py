"""Latency and area models for CIM deployments.

Complements the energy model: the paper's pitch is joint energy /
latency / footprint efficiency ("lower energy consumption and
switching speed", key takeaway #3; "greatly reduce hardware
footprint", conclusion).  Like the energy model, everything here is
op-count × per-op constant.

Latency model
-------------
A Monte-Carlo Bayesian inference is ``T`` sequential passes.  Within a
pass, crossbars of one layer fire in parallel but layers are
sequential, ADC conversions are time-multiplexed ``adc_share`` columns
per converter, and RNG masks must be generated before the layer fires
(dropout-module re-use rounds × cycle latency — the "sampling latency"
cost of Sec. II-D).

Area model
----------
Per-component silicon estimates: crossbar cells, ADCs, sense amps,
dropout modules, SRAM.  Used for the footprint comparisons between
methods (e.g. SpinDrop's per-neuron modules vs Scale-Drop's one per
layer).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Tuple

from repro.energy.model import (
    LayerSpec,
    NetworkSpec,
    method_rng_bits,
)


@dataclasses.dataclass(frozen=True)
class LatencyModel:
    """Per-operation latencies in seconds."""

    crossbar_read: float = 10e-9      # full-array MVM settle + sample
    adc_conversion: float = 5e-9      # per column conversion
    rng_cycle: float = 25e-9          # SET pulse + SA read + RESET pulse
    digital_pipeline: float = 2e-9    # norm/scale/sign per layer (pipelined)
    adc_share: int = 8                # columns time-multiplexed per ADC


@dataclasses.dataclass(frozen=True)
class AreaModel:
    """Per-component areas in µm² (28 nm-class estimates)."""

    crossbar_cell: float = 0.05       # 1T-1MTJ pair
    adc: float = 500.0                # 6-bit SAR
    sense_amp: float = 5.0
    dropout_module: float = 10.0      # MTJ + CMOS control + SA
    sram_bit: float = 0.3
    arbiter_stage: float = 12.0


def layer_latency(layer: LayerSpec, rng_bits: int,
                  n_modules: int, model: LatencyModel) -> float:
    """Latency of one layer's contribution to one MC pass.

    RNG generation (re-using ``n_modules`` physical modules), then the
    MVM (one crossbar read per spatial position), then the multiplexed
    ADC sweep; the digital periphery pipelines behind the ADC.
    """
    rng_rounds = math.ceil(rng_bits / max(n_modules, 1)) if rng_bits else 0
    t_rng = rng_rounds * model.rng_cycle
    t_mvm = layer.out_positions * model.crossbar_read
    conversions = layer.out_features * layer.out_positions
    adcs = max(1, layer.out_features // model.adc_share)
    t_adc = conversions / adcs * model.adc_conversion
    return t_rng + t_mvm + t_adc + model.digital_pipeline


def method_latency_per_image(spec: NetworkSpec, method: str,
                             n_mc_passes: int = 25,
                             model: LatencyModel = LatencyModel(),
                             spinbayes_components: int = 8
                             ) -> Tuple[float, Dict[str, float]]:
    """Seconds per image for a method, with a per-layer breakdown."""
    per_layer_bits = _rng_bits_per_layer(spec, method, spinbayes_components)
    passes = 1 if method == "deterministic" else n_mc_passes
    breakdown: Dict[str, float] = {}
    total = 0.0
    for i, layer in enumerate(spec.layers):
        bits, modules = per_layer_bits[i]
        t = layer_latency(layer, bits, modules, model)
        breakdown[f"layer{i}"] = t * passes
        total += t * passes
    return total, breakdown


def _rng_bits_per_layer(spec: NetworkSpec, method: str,
                        spinbayes_components: int):
    """(bits_per_pass, physical_modules) for each layer under a method."""
    out = []
    for layer in spec.layers:
        if method == "deterministic":
            out.append((0, 1))
        elif method == "spindrop":
            out.append((layer.neurons, layer.neurons))
        elif method == "spatial":
            out.append((layer.out_features, layer.out_features))
        elif method == "scaledrop":
            out.append((1, 1))
        elif method == "affine":
            out.append((2, 2))
        elif method == "subset_vi":
            out.append((layer.out_features, layer.out_features))
        elif method == "spinbayes":
            stages = max(1, math.ceil(math.log2(spinbayes_components)))
            out.append((stages, stages))
        elif method == "mc_dropconnect":
            # One module per weight is unbuildable; hardware re-uses a
            # per-neuron bank serially — the latency blow-up the paper
            # cites ("the overall sampling latency can be long").
            out.append((layer.weights, layer.neurons))
        else:
            raise ValueError(f"unknown method {method!r}")
    return out


def method_area(spec: NetworkSpec, method: str,
                model: AreaModel = AreaModel(),
                adc_share: int = 8,
                spinbayes_components: int = 8) -> Dict[str, float]:
    """Component-wise silicon area (µm²) of a deployed method."""
    cells = 2 * spec.total_weights      # complementary pairs
    if method == "spinbayes":
        cells = spinbayes_components * spec.total_weights * 2
    adcs = sum(max(1, layer.out_features // adc_share)
               for layer in spec.layers)
    sense_amps = sum(layer.out_features for layer in spec.layers)
    modules = method_rng_bits(spec, method) if method != "spinbayes" else (
        len(spec.layers) * max(1, math.ceil(
            math.log2(spinbayes_components))))
    if method == "mc_dropconnect":
        # Physical modules capped at one per neuron (serial re-use).
        modules = spec.total_neurons
    scale_bits = 32 * sum(layer.out_features for layer in spec.layers)
    area = {
        "crossbar": cells * model.crossbar_cell,
        "adc": adcs * model.adc,
        "sense_amps": sense_amps * model.sense_amp,
        "dropout_modules": modules * model.dropout_module,
        "scale_sram": scale_bits * model.sram_bit
        if method in ("scaledrop", "subset_vi") else 0.0,
    }
    area["total"] = sum(area.values())
    return area
