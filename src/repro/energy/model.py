"""Energy model: prices op ledgers and analytic network specs.

Two complementary paths:

1. **Measured** — :func:`price_ledger` prices the
   :class:`~repro.cim.ledger.OpLedger` accumulated by an actual
   simulated inference run (small synthetic networks).
2. **Analytic** — :class:`NetworkSpec` + :func:`method_energy_per_image`
   compute op counts for a *paper-scale* network (e.g. a LeNet-style
   CNN on 28×28 inputs with T Monte-Carlo passes) without simulating
   it, which is how the Table-I µJ/image scale is regenerated.

Both paths share the same :class:`~repro.energy.params.EnergyParams`
constants, so measured (small net) and analytic (paper-scale) numbers
are directly comparable per-op.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Tuple

from repro.cim.ledger import OpLedger
from repro.energy.params import DEFAULT_ENERGY, EnergyParams


def price_ledger(ledger: OpLedger,
                 params: EnergyParams = DEFAULT_ENERGY
                 ) -> Tuple[float, Dict[str, float]]:
    """Total joules and per-op breakdown for a ledger."""
    breakdown: Dict[str, float] = {}
    for op, count in ledger.counts.items():
        breakdown[op] = count * params.energy_of(op)
    return sum(breakdown.values()), breakdown


# ----------------------------------------------------------------------
# Analytic path
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class LayerSpec:
    """Static description of one MVM layer for analytic accounting.

    ``kind``: "linear" or "conv".
    ``out_positions``: spatial output positions (H'·W' for conv, 1 for
    linear) — the number of MVM invocations per forward pass.
    """

    kind: str
    in_features: int          # crossbar rows (K²·C_in for conv)
    out_features: int         # crossbar columns (C_out)
    out_positions: int = 1
    in_channels: int = 1      # conv only: feature maps entering
    out_h: int = 1
    out_w: int = 1

    @property
    def neurons(self) -> int:
        """Output neurons (dropout-module count for classic SpinDrop)."""
        return self.out_features * self.out_positions

    @property
    def weights(self) -> int:
        return self.in_features * self.out_features


@dataclasses.dataclass(frozen=True)
class NetworkSpec:
    """Ordered MVM layers of a network (periphery derived from them)."""

    layers: Tuple[LayerSpec, ...]
    name: str = "network"

    @property
    def total_neurons(self) -> int:
        return sum(layer.neurons for layer in self.layers)

    @property
    def total_weights(self) -> int:
        return sum(layer.weights for layer in self.layers)

    @property
    def total_feature_maps(self) -> int:
        """Channel counts of conv layers + neuron counts of fc layers
        (the Spatial-SpinDrop module count)."""
        total = 0
        for layer in self.layers:
            if layer.kind == "conv":
                total += layer.out_features
            else:
                total += layer.out_features
        return total


def lenet_like(input_size: int = 28, n_classes: int = 10) -> NetworkSpec:
    """A LeNet-5-style CNN spec — the paper-scale Table-I reference.

    conv(1→6, k5) → pool → conv(6→16, k5) → pool → fc 256→120 →
    fc 120→84 → fc 84→classes, on ``input_size``² grayscale images.
    """
    s1 = input_size - 4            # 24 after k5 valid conv
    p1 = s1 // 2                   # 12 after pool
    s2 = p1 - 4                    # 8 after second conv
    p2 = s2 // 2                   # 4 after pool
    fc_in = 16 * p2 * p2
    return NetworkSpec(name="lenet-like", layers=(
        LayerSpec("conv", 25, 6, out_positions=s1 * s1,
                  in_channels=1, out_h=s1, out_w=s1),
        LayerSpec("conv", 150, 16, out_positions=s2 * s2,
                  in_channels=6, out_h=s2, out_w=s2),
        LayerSpec("linear", fc_in, 120),
        LayerSpec("linear", 120, 84),
        LayerSpec("linear", 84, n_classes),
    ))


def mlp_spec(in_features: int, hidden: Tuple[int, ...],
             n_classes: int, name: str = "mlp") -> NetworkSpec:
    """Spec for an MLP (the small simulated networks)."""
    layers: List[LayerSpec] = []
    prev = in_features
    for width in hidden:
        layers.append(LayerSpec("linear", prev, width))
        prev = width
    layers.append(LayerSpec("linear", prev, n_classes))
    return NetworkSpec(tuple(layers), name=name)


def forward_pass_ledger(spec: NetworkSpec, max_rows: int = 128,
                        adc_per_chunk: bool = True) -> OpLedger:
    """Op counts of one deterministic forward pass (one image).

    Row chunking follows the CIM tiling: a layer with R input rows
    needs ceil(R / max_rows) separately converted partial sums.
    """
    ledger = OpLedger()
    for layer in spec.layers:
        chunks = math.ceil(layer.in_features / max_rows)
        positions = layer.out_positions
        ledger.add("crossbar_cell_access",
                   layer.in_features * layer.out_features * positions)
        ledger.add("dac_drive", layer.in_features * positions)
        ledger.add("adc_conversion",
                   layer.out_features * (chunks if adc_per_chunk else 1)
                   * positions)
        # Periphery per output: scale multiply + norm + sign.
        ledger.add("digital_mac", 2 * layer.out_features * positions)
        ledger.add("sa_read", layer.out_features * positions)
    return ledger


#: Per-pass RNG bits for each NeuSpin method (the method overhead).
def method_rng_bits(spec: NetworkSpec, method: str,
                    spinbayes_components: int = 8) -> int:
    """Stochastic device cycles one Monte-Carlo pass consumes."""
    if method == "deterministic":
        return 0
    if method == "spindrop":
        # One module per neuron, one bit per neuron per pass.
        return spec.total_neurons
    if method == "spatial":
        # One module per feature map (channel for conv, neuron-group
        # for fc treated as one map per output).
        return spec.total_feature_maps
    if method == "scaledrop":
        return len(spec.layers)               # single module per layer
    if method == "affine":
        return 2 * len(spec.layers)           # weight + bias masks
    if method == "subset_vi":
        # One stochastic-SOT switching event per Gaussian scale sample
        # (the SOT device's stochastic regime used directly as the
        # sampler, Sec. III-B.1).
        return sum(layer.out_features for layer in spec.layers)
    if method == "spinbayes":
        # Arbiter: ceil(log2 N) cycles per layer.
        return len(spec.layers) * max(1, math.ceil(
            math.log2(spinbayes_components)))
    if method == "mc_dropconnect":
        return spec.total_weights             # one module per weight
    raise ValueError(f"unknown method {method!r}")


def method_extra_ops(spec: NetworkSpec, method: str) -> OpLedger:
    """Non-RNG per-pass overhead (e.g. the Fig.-2 scale SRAM path)."""
    ledger = OpLedger()
    if method in ("scaledrop", "subset_vi"):
        scale_words = sum(layer.out_features for layer in spec.layers)
        ledger.add("sram_read", scale_words)
        ledger.add("digital_mac",
                   sum(layer.out_features * layer.out_positions
                       for layer in spec.layers))
    return ledger


def method_energy_per_image(spec: NetworkSpec, method: str,
                            n_mc_passes: int = 25,
                            params: EnergyParams = DEFAULT_ENERGY,
                            max_rows: int = 128,
                            spinbayes_components: int = 8
                            ) -> Tuple[float, Dict[str, float]]:
    """Analytic energy per image for a method on a network spec.

    Energy = T × (forward-pass ops + method RNG bits + method extras),
    priced with ``params``.  Returns (joules, per-op breakdown).
    """
    passes = 1 if method == "deterministic" else n_mc_passes
    per_pass = forward_pass_ledger(spec, max_rows=max_rows)
    per_pass.add("rng_cycle", method_rng_bits(
        spec, method, spinbayes_components=spinbayes_components))
    per_pass.merge(method_extra_ops(spec, method))
    total = per_pass.scaled(passes)
    return price_ledger(total, params)


def dropout_subsystem_energy(spec: NetworkSpec, method: str,
                             n_mc_passes: int = 25,
                             params: EnergyParams = DEFAULT_ENERGY) -> float:
    """Energy of the dropout/RNG subsystem alone (per image).

    The quantity behind the paper's 94.11× (Spatial vs SpinDrop
    dropout energy) and >100× (Scale-Dropout) reduction claims.
    """
    bits = method_rng_bits(spec, method) * n_mc_passes
    return bits * params.rng_cycle


def storage_bits(spec: NetworkSpec, method: str,
                 stat_bits: int = 32,
                 spinbayes_components: int = 8,
                 spinbayes_bits: int = 4) -> int:
    """Deployed parameter storage per method (memory-claim engine)."""
    weights = spec.total_weights
    scales = sum(layer.out_features for layer in spec.layers)
    norm = 4 * scales * stat_bits          # mean/var/gamma/beta
    if method == "deterministic":
        return weights + scales * stat_bits + norm
    if method in ("spindrop", "spatial", "scaledrop", "affine"):
        return weights + scales * stat_bits + norm
    if method == "subset_vi":
        return weights + 2 * scales * stat_bits + norm
    if method == "conventional_vi":
        return 2 * weights * stat_bits + norm
    if method == "spinbayes":
        return spinbayes_components * weights * spinbayes_bits + norm
    if method == "ensemble":
        members = 5
        return members * (weights + scales * stat_bits + norm)
    raise ValueError(f"unknown method {method!r}")
