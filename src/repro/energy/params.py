"""Per-operation energy/latency constants.

The paper reports circuit-level energies (µJ/image, Table I) from
SPICE-level design work we cannot re-run offline.  The reproduction
prices *operation counts* with representative constants from the
CIM/MRAM literature; the constants below are the calibration points
and the only "free" numbers in the energy model — everything else is
counted, not assumed.

Sources for the orders of magnitude (see README references):

* MTJ write (SET/RESET pulse): ~5 pJ for the fast (ns-scale) pulses a
  per-inference RNG needs; one full SET-read-RESET RNG cycle therefore
  costs ~12 pJ (two writes + a sense-amp read + decoder overhead).
  Energy-optimized *storage* writes can be sub-pJ (IEDM'22, [3] of the
  paper), but RNG cycles run at speed.
* MTJ/crossbar cell read: ~1 fJ per cell per MVM (current-mode read at
  0.1 V across ~10 kΩ for ~10 ns).
* SAR ADC: ~1 pJ per 6-bit conversion (dominant shared-periphery cost
  in published CIM macros).
* Sense amplifier: ~20 fJ per binary decision.
* SRAM: ~1 pJ per 32-bit word access (small macro).
* Digital 8-bit MAC: ~0.2 pJ; misc. digital op: ~0.05 pJ.
* Row (DAC/wordline) drive: ~50 fJ.

The *ratios* in Table I / the text claims come from op-count ratios,
which the simulation reproduces structurally; these constants set the
absolute scale only.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class EnergyParams:
    """Energy per operation, in joules."""

    crossbar_cell_access: float = 1e-15     # 1 fJ
    adc_conversion: float = 1e-12           # 1 pJ  (6-bit SAR)
    sa_read: float = 2e-14                  # 20 fJ
    mtj_write: float = 5e-12                # 5 pJ  (fast write pulse)
    rng_cycle: float = 12e-12               # SET attempt + SA read + RESET
    sram_read: float = 1e-12                # 1 pJ / 32-bit word
    sram_write: float = 1.5e-12
    digital_mac: float = 2e-13              # 0.2 pJ
    digital_op: float = 5e-14               # 0.05 pJ
    dac_drive: float = 5e-14                # 50 fJ row drive

    def energy_of(self, op: str) -> float:
        """Joules for one operation of the given ledger name."""
        try:
            return getattr(self, op)
        except AttributeError:
            raise KeyError(f"no energy constant for operation {op!r}") from None


@dataclasses.dataclass(frozen=True)
class LatencyParams:
    """Latency per operation, in seconds (for throughput estimates)."""

    crossbar_read: float = 10e-9       # one full-array MVM readout
    adc_conversion: float = 5e-9
    rng_cycle: float = 25e-9           # SET pulse + read + RESET pulse
    sram_access: float = 2e-9
    digital_mac: float = 1e-9


#: Default constants used across benchmarks unless overridden.
DEFAULT_ENERGY = EnergyParams()
DEFAULT_LATENCY = LatencyParams()
