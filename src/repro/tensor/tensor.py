"""The ``Tensor`` class: a numpy array plus a reverse-mode tape.

Design notes
------------
* Dynamic define-by-run graph.  Each ``Tensor`` produced by an
  operation stores a ``_backward`` closure and the set of parent
  tensors; ``backward()`` topologically sorts the graph and runs the
  closures in reverse.
* Gradients accumulate into ``tensor.grad`` (a raw numpy array), the
  same contract PyTorch uses, which keeps optimizer code familiar.
* Broadcasting is handled in one place (``_unbroadcast``): every
  binary op may freely rely on numpy broadcasting in the forward pass
  and reduce the upstream gradient back to each parent's shape.
* A module-level flag implements ``no_grad()`` for cheap inference —
  crucial here because Bayesian inference runs tens of Monte Carlo
  forward passes per input.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

# Per-thread grad flag: sharded serving runs engine replicas on a
# thread pool, each inside its own ``no_grad()`` — a process-wide
# flag would let one thread's exit re-enable (or leave disabled)
# tracking for another thread mid-forward.
_grad_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the tape
    (in the current thread)."""
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking (thread-local).

    Used by all evaluation / Monte-Carlo-inference paths; forward
    passes inside the block build no graph and allocate no closures.
    """
    previous = getattr(_grad_state, "enabled", True)
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A differentiable numpy array.

    Parameters
    ----------
    data:
        Array content; coerced to ``float64`` (the reproduction favours
        numeric fidelity over speed — models here are small).
    requires_grad:
        Whether gradients should flow into this tensor.  Only leaf
        tensors created by the user / ``nn.Parameter`` normally set it.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: Optional[np.random.Generator] = None,
              scale: float = 1.0, requires_grad: bool = False) -> "Tensor":
        gen = rng if rng is not None else np.random.default_rng()
        return Tensor(gen.standard_normal(shape) * scale,
                      requires_grad=requires_grad)

    @staticmethod
    def from_op(data: np.ndarray, parents: Iterable["Tensor"],
                backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Build a non-leaf tensor recording ``backward`` on the tape."""
        parents = tuple(parents)
        needs_grad = is_grad_enabled() and any(
            p.requires_grad for p in parents)
        out = Tensor(data)
        out.requires_grad = needs_grad
        if needs_grad:
            out._backward = backward
            out._parents = parents
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); detached view."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Gradient machinery
    # ------------------------------------------------------------------
    def accumulate_grad(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        ``grad`` defaults to ones (for scalar losses simply the value
        1.0).  Raises if called on a tensor that does not require grad.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not "
                               "require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar "
                                   "backward()")
            grad = np.ones_like(self.data)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self.accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Operator sugar (delegates to functional ops; imported lazily to
    # avoid a circular import at module load time)
    # ------------------------------------------------------------------
    def _f(self):
        from repro.tensor import functional
        return functional

    def __add__(self, other):
        return self._f().add(self, other)

    __radd__ = __add__

    def __mul__(self, other):
        return self._f().mul(self, other)

    __rmul__ = __mul__

    def __sub__(self, other):
        return self._f().sub(self, other)

    def __rsub__(self, other):
        return self._f().sub(other, self)

    def __truediv__(self, other):
        return self._f().div(self, other)

    def __rtruediv__(self, other):
        return self._f().div(other, self)

    def __neg__(self):
        return self._f().mul(self, -1.0)

    def __pow__(self, exponent: float):
        return self._f().power(self, exponent)

    def __matmul__(self, other):
        return self._f().matmul(self, other)

    def __getitem__(self, index):
        return self._f().getitem(self, index)

    # Reductions / shape ops as methods for readability at call sites.
    def sum(self, axis=None, keepdims: bool = False):
        return self._f().sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        return self._f().mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int):
        return self._f().reshape(self, shape)

    def transpose(self, axes: Optional[tuple] = None):
        return self._f().transpose(self, axes)

    @property
    def T(self):
        return self.transpose()


def as_tensor(value: Union[Tensor, ArrayLike]) -> Tensor:
    """Coerce ``value`` to a (constant) Tensor if it is not one."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
