"""Bit-packed XNOR/popcount MVM kernels.

The paper's CIM fabric computes a binary MVM as XNOR + popcount in
the analog domain; this module is its digital shadow.  Sign tensors
are packed 64 weights per ``uint64`` lane, an MVM becomes
``bitwise_xor`` + popcount over the packed words, and the ±1 dot
product is recovered from the mismatch count:

    dot[b, c] = n_active[b] - 2 * popcount((sign_x ^ sign_w) & active_x)

Ternary activations {−1, 0, +1} (zeros are dropout-gated wordlines)
carry TWO bitplanes — a *sign* plane (bit = value > 0) and an
*active* plane (bit = value != 0); ±1 weights carry one sign plane.
Lane layout: bit ``i`` of word ``w`` is element ``w·64 + i`` of the
packed axis (``np.packbits(..., bitorder="little")`` bytes viewed as
native ``uint64`` — both operands go through the same byte path, so
the layout cancels out of the XOR/popcount regardless of host
endianness).  The last lane of a K-not-divisible-by-64 axis is
zero-padded; those tail bits never reach a popcount because every
XOR word is ANDed with the activations' active plane, whose own tail
is zero — the active plane doubles as the tail mask.

Popcount backends: NumPy >= 2 ships :func:`numpy.bitwise_count`; on
older NumPy a vectorized 16-bit lookup table (four table gathers +
one reduce per word) fills in.  Tests force the LUT via
:func:`force_popcount_backend` so both backends stay covered even on
new NumPy; the ``REPRO_POPCOUNT_BACKEND`` environment variable does
the same for a whole process (the CI NumPy-floor leg).

Performance regime (single core, vs the exact-integer float32 GEMM
route that OpenBLAS runs at compute-bound peak): the packed kernel
moves 64× less weight traffic but has no register blocking, so it
*loses* on compute-bound shapes (large batch) and wins 4–13× on
memory-bound GEMV shapes — a small batch of rows against a wide
packed matrix, exactly the latency-path serving slice.
:func:`packed_route_beneficial` encodes that boundary for the
``use_bitpack = None`` auto mode of the CIM layers.
"""

from __future__ import annotations

import contextlib
import os
from typing import List, Optional

import numpy as np

LANE = 64                       # packed weights per uint64 word

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
_backend_override: Optional[str] = None
_lut16: Optional[np.ndarray] = None


def available_backends() -> tuple:
    """Popcount backends usable on this NumPy, preferred first."""
    if _HAS_BITWISE_COUNT:
        return ("bitwise_count", "lut16")
    return ("lut16",)


def popcount_backend() -> str:
    """The backend :func:`packed_mvm` will use right now."""
    if _backend_override is not None:
        return _backend_override
    return "bitwise_count" if _HAS_BITWISE_COUNT else "lut16"


def set_popcount_backend(name: Optional[str]) -> None:
    """Pin the popcount backend (``None`` restores auto-selection)."""
    global _backend_override
    if name is not None:
        if name not in ("bitwise_count", "lut16"):
            raise ValueError(f"unknown popcount backend {name!r}")
        if name == "bitwise_count" and not _HAS_BITWISE_COUNT:
            raise ValueError(
                "numpy.bitwise_count is unavailable on this NumPy")
    _backend_override = name


@contextlib.contextmanager
def force_popcount_backend(name: str):
    """Scoped :func:`set_popcount_backend` — how the test suite runs
    every kernel property against the LUT fallback on NumPy >= 2."""
    previous = _backend_override
    set_popcount_backend(name)
    try:
        yield
    finally:
        set_popcount_backend(previous)


def _lut() -> np.ndarray:
    """Lazily built 65536-entry per-halfword popcount table."""
    global _lut16
    if _lut16 is None:
        table = np.arange(1 << 16, dtype=np.uint16)
        _lut16 = np.unpackbits(
            table.view(np.uint8).reshape(-1, 2), axis=1
        ).sum(axis=1).astype(np.uint8)
    return _lut16


def popcount_into(words: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Per-element popcount of C-contiguous uint64 ``words`` → uint8
    ``out`` of the same shape, on the selected backend."""
    if popcount_backend() == "bitwise_count":
        return np.bitwise_count(words, out=out)
    halves = _lut()[words.view(np.uint16)]
    return np.sum(halves.reshape(out.shape + (4,)), axis=-1,
                  dtype=np.uint8, out=out)


# ----------------------------------------------------------------------
# Packing: {0, 1} bit matrices -> word-major (W, B) uint64 planes.

def _pack_axis_last(bits: np.ndarray) -> np.ndarray:
    """(..., K) bits → (..., W) uint64 words, W = ceil(K / 64)."""
    packed = np.packbits(bits, axis=-1, bitorder="little")
    pad = (-packed.shape[-1]) % 8
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(packed.shape[:-1] + (pad,), np.uint8)],
            axis=-1)
    return np.ascontiguousarray(packed).view(np.uint64)


def _pack_axis0(bits: np.ndarray) -> np.ndarray:
    """(K, B) bits → (W, B) uint64 word-major planes.

    Packs down the K axis without transposing the (often large) source
    matrix: byte-pack along axis 0, then regroup runs of 8 bytes into
    native uint64 words — the same byte order :func:`_pack_axis_last`
    produces, so both layouts interoperate.
    """
    packed = np.packbits(bits, axis=0, bitorder="little")
    pad = (-packed.shape[0]) % 8
    if pad:
        packed = np.concatenate(
            [packed, np.zeros((pad,) + packed.shape[1:], np.uint8)],
            axis=0)
    n_words, b = packed.shape[0] // 8, packed.shape[1]
    grouped = np.ascontiguousarray(
        packed.reshape(n_words, 8, b).transpose(0, 2, 1))
    return grouped.view(np.uint64)[..., 0]


def _unpack_axis0(words: np.ndarray, k: int) -> np.ndarray:
    """(W, B) uint64 planes → (k, B) {0, 1} uint8 bits (pack inverse)."""
    n_words, b = words.shape
    by = np.ascontiguousarray(words)[:, :, None].view(np.uint8)
    by = np.ascontiguousarray(by.transpose(0, 2, 1)).reshape(8 * n_words, b)
    return np.unpackbits(by, axis=0, bitorder="little")[:k]


class PackedPlanes:
    """Word-major bitplanes of a ternary activation batch.

    ``sign_t`` / ``active_t`` are ``(W, B)`` uint64 — word index major
    so the MVM's word loop reads one contiguous row per iteration;
    ``n_active`` is the per-sample asserted-wordline count (what the
    crossbar ledger books per MVM).
    """

    __slots__ = ("sign_t", "active_t", "n_active", "k")

    def __init__(self, sign_t: np.ndarray, active_t: np.ndarray,
                 n_active: np.ndarray, k: int):
        self.sign_t = sign_t
        self.active_t = active_t
        self.n_active = n_active
        self.k = k

    @property
    def n_words(self) -> int:
        return self.sign_t.shape[0]

    @property
    def batch(self) -> int:
        return self.sign_t.shape[1]


class PackedWeights:
    """±1 weight matrix packed to word-major ``(W, n_cols)`` sign words
    (bit = weight > 0); ``k`` is the logical row count, tail bits of
    the last word are zero."""

    __slots__ = ("sign_t", "k")

    def __init__(self, sign_t: np.ndarray, k: int):
        self.sign_t = sign_t
        self.k = k

    @property
    def n_words(self) -> int:
        return self.sign_t.shape[0]

    @property
    def n_cols(self) -> int:
        return self.sign_t.shape[1]


def pack_ternary_rows(x: np.ndarray) -> PackedPlanes:
    """Pack a row-major ``(B, K)`` {−1, 0, +1} batch into planes."""
    x = np.asarray(x)
    sign = _pack_axis_last(x > 0)
    active = _pack_axis_last(x != 0)
    n_active = np.count_nonzero(x, axis=-1).astype(np.int64)
    return PackedPlanes(np.ascontiguousarray(sign.T),
                        np.ascontiguousarray(active.T),
                        n_active, x.shape[-1])


def pack_ternary_cols(x: np.ndarray) -> PackedPlanes:
    """Pack a column-major ``(K, B)`` {−1, 0, +1} slab into planes —
    the conv layers' im2col patch layout, packed without a transpose
    copy of the float source."""
    x = np.asarray(x)
    return PackedPlanes(_pack_axis0(x > 0), _pack_axis0(x != 0),
                        np.count_nonzero(x, axis=0).astype(np.int64),
                        x.shape[0])


def pack_weights(weights: np.ndarray) -> PackedWeights:
    """Pack a ``(K, n_cols)`` ±1 weight matrix (rows=inputs)."""
    w = np.asarray(weights)
    return PackedWeights(_pack_axis0(w > 0), w.shape[0])


def unpack_ternary(planes: PackedPlanes) -> np.ndarray:
    """Inverse of the activation pack: ``(B, k)`` float64 ternary."""
    sign = _unpack_axis0(planes.sign_t, planes.k).astype(np.float64)
    active = _unpack_axis0(planes.active_t, planes.k).astype(np.float64)
    return ((2.0 * sign - 1.0) * active).T


def unpack_weights(packed: PackedWeights) -> np.ndarray:
    """Inverse of :func:`pack_weights`: ``(k, n_cols)`` float64 ±1."""
    bits = _unpack_axis0(packed.sign_t, packed.k)
    return np.where(bits > 0, 1.0, -1.0)


# ----------------------------------------------------------------------
# The kernel.

def packed_mvm(planes: PackedPlanes, weights: PackedWeights,
               out: Optional[np.ndarray] = None,
               col_major: bool = False) -> np.ndarray:
    """XNOR-popcount MVM on packed planes: exact ±1 dot products.

    ``dot[b, c] = n_active[b] − 2·popcount((sign_x ^ sign_w) &
    active_x)`` — the popcount counts *mismatches* among asserted
    wordlines, identical to the decoded integer MAC of an ideal
    :class:`~repro.cim.crossbar.XnorCrossbar` (2·matches − n_active).

    Word loop over word-major operands: each iteration broadcasts one
    ``(B,)`` activation word row against one ``(C,)`` weight word row
    into a reused ``(B, C)`` buffer, popcounts it, and accumulates in
    uint16 (uint32 past K = 65535).  Returns int64 dots, ``(B, C)``
    row-major or ``(C, B)`` with ``col_major=True`` (the conv layers'
    partial-sum layout); ``out`` assigns into an existing buffer of
    that shape instead (any float/int dtype that holds |dot| <= K
    exactly — the CIM layers pass their float32 partial-sum arenas).
    """
    if planes.k != weights.k:
        raise ValueError(
            f"packed operand depth mismatch: {planes.k} != {weights.k}")
    xs, xa, ws = planes.sign_t, planes.active_t, weights.sign_t
    b, c = planes.batch, weights.n_cols
    shape = (c, b) if col_major else (b, c)
    acc = np.zeros(shape, np.uint32 if planes.k > 0xFFFF else np.uint16)
    tmp = np.empty(shape, np.uint64)
    cnt = np.empty(shape, np.uint8)
    for wd in range(planes.n_words):
        if col_major:
            np.bitwise_xor(ws[wd][:, None], xs[wd][None, :], out=tmp)
            np.bitwise_and(tmp, xa[wd][None, :], out=tmp)
        else:
            np.bitwise_xor(xs[wd][:, None], ws[wd][None, :], out=tmp)
            np.bitwise_and(tmp, xa[wd][:, None], out=tmp)
        popcount_into(tmp, cnt)
        acc += cnt
    n_active = planes.n_active[None, :] if col_major \
        else planes.n_active[:, None]
    dots = n_active - 2 * acc.astype(np.int64)
    if out is None:
        return dots
    out[...] = dots
    return out


def pack_weight_groups(weight: np.ndarray, groups: int
                       ) -> List[PackedWeights]:
    """Pack a conv/linear kernel ``(C_out, …)`` into per-group packed
    operands: group ``g`` maps to a ``(f_g, C_out/groups)`` matrix
    (im2col rows × output channels), matching the block-diagonal GEMM
    of the grouped inference conv."""
    c_out = weight.shape[0]
    flat = weight.reshape(groups, c_out // groups, -1)
    return [pack_weights(flat[g].T) for g in range(groups)]


def packed_route_beneficial(batch: int, k: int, n_cols: int,
                            weights_prepacked: bool = True) -> bool:
    """Auto-route policy for ``use_bitpack = None``.

    The packed kernel wins only in the memory-bound regime: a small
    row batch against a wide weight matrix, where the float32 route is
    bottlenecked on weight traffic the packed operand shrinks 64×
    (measured 4–13× at batch <= 8, K·C >= 1M; 0.2–0.6× on large-batch
    compute-bound GEMMs).  Per-call weight packing costs more than the
    GEMV it replaces, so the auto route also requires weights packed
    ahead of time (program/compile/snapshot), never per call.
    """
    if not weights_prepacked:
        return False
    return batch <= 8 and k >= 256 and k * n_cols >= (1 << 19)


_env_backend = os.environ.get("REPRO_POPCOUNT_BACKEND")
if _env_backend:
    set_popcount_backend(_env_backend)
