"""Numerical gradient checking for the autograd engine.

Central-difference comparison against analytic gradients; used by the
test suite to certify every primitive op, which in turn certifies the
training of all six Bayesian methods built on top.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numeric_grad(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                 index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
              atol: float = 1e-5, rtol: float = 1e-4,
              eps: float = 1e-6) -> bool:
    """Verify analytic gradients of ``fn`` against central differences.

    ``fn`` must be deterministic.  Raises ``AssertionError`` with a
    diagnostic on mismatch; returns ``True`` on success.
    """
    for tensor in inputs:
        tensor.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        expected = numeric_grad(fn, inputs, i, eps=eps)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(expected)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.abs(actual - expected).max()
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs err {worst:.3e}")
    return True
