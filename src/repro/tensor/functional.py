"""Differentiable primitive operations.

Every function takes/returns :class:`repro.tensor.Tensor` and records
a closure implementing the vector-Jacobian product.  Shapes follow
numpy broadcasting; convolutions use NCHW layout via im2col so the
heavy lifting stays inside BLAS matmuls.

The one domain-specific primitive is :func:`sign_ste` — binarization
with a straight-through estimator — which is the algorithmic core of
the binary Bayesian networks in the NeuSpin paper (Sec. III-A: "the
standard matrix-vector multiplications are replaced with XNOR
operations", which requires ±1 weights trained with an STE).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor import bitpack
from repro.tensor.tensor import Tensor, as_tensor, is_grad_enabled, _unbroadcast

Axis = Union[None, int, Tuple[int, ...]]

__all__ = [
    # elementwise / nonlinearities
    "add", "sub", "mul", "div", "power", "exp", "log", "sqrt", "absolute",
    "relu", "leaky_relu", "sigmoid", "tanh", "hardtanh", "sign_ste",
    "where", "maximum", "clip",
    # linear algebra / reductions / shape
    "matmul", "sum", "mean", "var", "max_reduce",
    "reshape", "transpose", "concat", "getitem", "pad2d",
    # convolution / pooling and the shared kernel substrate
    "conv2d", "max_pool2d", "avg_pool2d", "upsample2d",
    "im2col", "col2im",
    "conv_plan_cache_stats", "clear_conv_plan_cache",
    # softmax family
    "softmax", "log_softmax", "softmax_cross_entropy",
]


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------
def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad)
        if b.requires_grad:
            b.accumulate_grad(grad)

    return Tensor.from_op(out_data, (a, b), backward)


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad)
        if b.requires_grad:
            b.accumulate_grad(-grad)

    return Tensor.from_op(out_data, (a, b), backward)


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * b.data)
        if b.requires_grad:
            b.accumulate_grad(grad * a.data)

    return Tensor.from_op(out_data, (a, b), backward)


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad / b.data)
        if b.requires_grad:
            b.accumulate_grad(-grad * a.data / (b.data ** 2))

    return Tensor.from_op(out_data, (a, b), backward)


def power(a, exponent: float) -> Tensor:
    a = as_tensor(a)
    out_data = a.data ** exponent

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * exponent * a.data ** (exponent - 1))

    return Tensor.from_op(out_data, (a,), backward)


def exp(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * out_data)

    return Tensor.from_op(out_data, (a,), backward)


def log(a, eps: float = 0.0) -> Tensor:
    """Natural log; pass ``eps`` to stabilize near-zero inputs."""
    a = as_tensor(a)
    shifted = a.data + eps
    out_data = np.log(shifted)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad / shifted)

    return Tensor.from_op(out_data, (a,), backward)


def sqrt(a, eps: float = 0.0) -> Tensor:
    a = as_tensor(a)
    out_data = np.sqrt(a.data + eps)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * 0.5 / np.maximum(out_data, 1e-300))

    return Tensor.from_op(out_data, (a,), backward)


def absolute(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.abs(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * np.sign(a.data))

    return Tensor.from_op(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Nonlinearities
# ----------------------------------------------------------------------
def relu(a) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0
    out_data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * mask)

    return Tensor.from_op(out_data, (a,), backward)


def leaky_relu(a, negative_slope: float = 0.01) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0
    out_data = np.where(mask, a.data, negative_slope * a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * np.where(mask, 1.0, negative_slope))

    return Tensor.from_op(out_data, (a,), backward)


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    out_data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * out_data * (1.0 - out_data))

    return Tensor.from_op(out_data, (a,), backward)


def tanh(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * (1.0 - out_data ** 2))

    return Tensor.from_op(out_data, (a,), backward)


def hardtanh(a, low: float = -1.0, high: float = 1.0) -> Tensor:
    a = as_tensor(a)
    out_data = np.clip(a.data, low, high)
    mask = (a.data > low) & (a.data < high)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * mask)

    return Tensor.from_op(out_data, (a,), backward)


def sign_ste(a, clip: float = 1.0) -> Tensor:
    """Binarize to ±1 with a straight-through estimator.

    Forward: ``sign(x)`` with ``sign(0) := +1`` so weights always map to
    a valid MTJ state (P or AP — the devices have exactly two stable
    states, paper Sec. II-D).  Backward: the gradient passes through
    unchanged inside ``|x| <= clip`` and is zeroed outside, i.e. the
    hard-tanh STE used by BinaryNet-style training.
    """
    a = as_tensor(a)
    out_data = np.where(a.data >= 0, 1.0, -1.0)
    if not (is_grad_enabled() and a.requires_grad):
        # Inference fast path: the STE window mask is backward-only
        # bookkeeping — skip it and the tape node.
        return Tensor(out_data)
    mask = np.abs(a.data) <= clip

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * mask)

    return Tensor.from_op(out_data, (a,), backward)


def where(condition: np.ndarray, a, b) -> Tensor:
    """Select ``a`` where ``condition`` else ``b``; condition is constant."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(np.where(cond, grad, 0.0))
        if b.requires_grad:
            b.accumulate_grad(np.where(cond, 0.0, grad))

    return Tensor.from_op(out_data, (a, b), backward)


def maximum(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    take_a = a.data >= b.data
    out_data = np.where(take_a, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(np.where(take_a, grad, 0.0))
        if b.requires_grad:
            b.accumulate_grad(np.where(take_a, 0.0, grad))

    return Tensor.from_op(out_data, (a, b), backward)


def clip(a, low: float, high: float) -> Tensor:
    """Clamp values; gradient flows only through unclipped entries."""
    return hardtanh(a, low, high)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------
def matmul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            ga = grad @ np.swapaxes(b.data, -1, -2)
            a.accumulate_grad(_unbroadcast(ga, a.data.shape))
        if b.requires_grad:
            gb = np.swapaxes(a.data, -1, -2) @ grad
            b.accumulate_grad(_unbroadcast(gb, b.data.shape))

    return Tensor.from_op(out_data, (a, b), backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def _expand_reduced(grad: np.ndarray, shape: tuple, axis: Axis,
                    keepdims: bool) -> np.ndarray:
    if axis is None:
        return np.broadcast_to(grad, shape)
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    axes = tuple(ax % len(shape) for ax in axes)
    if not keepdims:
        for ax in sorted(axes):
            grad = np.expand_dims(grad, ax)
    return np.broadcast_to(grad, shape)


def sum(a, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(_expand_reduced(grad, a.data.shape, axis, keepdims))

    return Tensor.from_op(out_data, (a,), backward)


def mean(a, axis: Axis = None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    count = a.data.size / max(out_data.size, 1)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            expanded = _expand_reduced(grad, a.data.shape, axis, keepdims)
            a.accumulate_grad(expanded / count)

    return Tensor.from_op(out_data, (a,), backward)


def var(a, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Biased variance (divides by N), matching batch-norm semantics."""
    mu = mean(a, axis=axis, keepdims=True)
    centered = sub(a, mu)
    sq = mul(centered, centered)
    return mean(sq, axis=axis, keepdims=keepdims)


def max_reduce(a, axis: int, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)
    expanded_out = a.data.max(axis=axis, keepdims=True)
    mask = a.data == expanded_out
    # Split gradient evenly across ties (rare with float data).
    counts = mask.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            g = grad if keepdims else np.expand_dims(grad, axis)
            a.accumulate_grad(mask * g / counts)

    return Tensor.from_op(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------
def reshape(a, shape: Sequence[int]) -> Tensor:
    a = as_tensor(a)
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    out_data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad.reshape(a.data.shape))

    return Tensor.from_op(out_data, (a,), backward)


def transpose(a, axes: Optional[tuple] = None) -> Tensor:
    a = as_tensor(a)
    out_data = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = tuple(np.argsort(axes))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(np.transpose(grad, inverse))

    return Tensor.from_op(out_data, (a,), backward)


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor.accumulate_grad(grad[tuple(index)])

    return Tensor.from_op(out_data, tuple(tensors), backward)


def getitem(a, index) -> Tensor:
    a = as_tensor(a)
    out_data = a.data[index]

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            full = np.zeros_like(a.data)
            np.add.at(full, index, grad)
            a.accumulate_grad(full)

    return Tensor.from_op(out_data, (a,), backward)


def pad2d(a, padding: int) -> Tensor:
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""
    a = as_tensor(a)
    if padding == 0:
        return a
    pad_width = ((0, 0), (0, 0), (padding, padding), (padding, padding))
    out_data = np.pad(a.data, pad_width)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad[:, :, padding:-padding, padding:-padding])

    return Tensor.from_op(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Convolution / pooling via im2col — with cached index plans
# ----------------------------------------------------------------------
class _PlanCache:
    """Bounded memo of im2col gather/scatter index plans.

    Every convolution, pooling window and col2im scatter derives its
    fancy-index arrays purely from the spatial geometry ``(h, w, kh,
    kw, stride)``.  Monte-Carlo inference re-runs the same geometry T
    times per prediction (and serving re-runs it per flush), so the
    plans are memoized here and rebuilt only when a new geometry
    appears.  LRU-bounded: a long-lived process cycling through many
    input shapes evicts the least recently used plan instead of
    growing without limit.
    """

    def __init__(self, max_plans: int = 128):
        self.max_plans = max_plans
        self._plans: OrderedDict = OrderedDict()
        # Shared across sharded-serving threads: the lock keeps LRU
        # bookkeeping (move_to_end after a concurrent eviction) and
        # the hit/build counters coherent.
        self._lock = threading.Lock()
        self.hits = 0
        self.builds = 0
        self.evictions = 0

    def get(self, key: tuple, build):
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return plan
            self.builds += 1
        plan = build()
        with self._lock:
            self._plans[key] = plan
            if len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
                self.evictions += 1
        return plan

    def __len__(self) -> int:
        return len(self._plans)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = self.builds = self.evictions = 0


_conv_plans = _PlanCache()


def conv_plan_cache_stats() -> Dict[str, int]:
    """Counters of the shared im2col/pooling plan cache.

    ``builds`` counts index-plan constructions (cache misses); a warm
    steady state — every MC pass, scheduler flush, or training step on
    already-seen geometry — performs zero builds.  The CI bench gate
    and the plan-cache tests assert exactly that.
    """
    return {
        "plans": len(_conv_plans),
        "hits": _conv_plans.hits,
        "builds": _conv_plans.builds,
        "evictions": _conv_plans.evictions,
    }


def clear_conv_plan_cache() -> None:
    """Drop all memoized index plans (and reset the counters)."""
    _conv_plans.clear()


def _build_im2col_indices(h: int, w: int, kh: int, kw: int, stride: int,
                          dilation: int = 1):
    span_h = (kh - 1) * dilation + 1
    span_w = (kw - 1) * dilation + 1
    out_h = (h - span_h) // stride + 1
    out_w = (w - span_w) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError(
            f"kernel ({kh}x{kw}, dilation {dilation}) does not fit the "
            f"{h}x{w} input")
    i0 = np.repeat(dilation * np.arange(kh), kw)
    j0 = np.tile(dilation * np.arange(kw), kh)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    rows = i0.reshape(-1, 1) + i1.reshape(1, -1)
    cols = j0.reshape(-1, 1) + j1.reshape(1, -1)
    # The plan is shared across callers: freeze it so an accidental
    # in-place edit cannot corrupt every later forward.
    rows.setflags(write=False)
    cols.setflags(write=False)
    return rows, cols, out_h, out_w


def _im2col_indices(h: int, w: int, kh: int, kw: int, stride: int,
                    dilation: int = 1):
    return _conv_plans.get(
        (h, w, kh, kw, stride, dilation),
        lambda: _build_im2col_indices(h, w, kh, kw, stride, dilation))


def _flat_gather_indices(h: int, w: int, kh: int, kw: int,
                         stride: int, dilation: int = 1) -> np.ndarray:
    """Flattened (row·w + col) gather plan over an (…, h·w) view —
    the ``np.take`` form of the im2col plan, memoized alongside it."""
    def build():
        rows, cols, _, _ = _im2col_indices(h, w, kh, kw, stride, dilation)
        flat = np.ascontiguousarray((rows * w + cols).ravel())
        flat.setflags(write=False)
        return flat
    return _conv_plans.get(("flat", h, w, kh, kw, stride, dilation), build)


def _is_exact_ternary(x: np.ndarray) -> bool:
    """True when every element is exactly −1, 0, or +1 (sign outputs,
    possibly dropout-masked) — the precondition for the exact-integer
    float32 inference routes.  Probes a small prefix first so
    real-valued data short-circuits without a full scan."""
    flat = x.reshape(-1)
    probe = flat[:64]
    if not ((probe == 1.0) | (probe == -1.0) | (probe == 0.0)).all():
        return False
    return bool(((flat == 1.0) | (flat == -1.0) | (flat == 0.0)).all())


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, dilation: int = 1):
    """(N, C, H, W) -> (N, C*kh*kw, out_h*out_w) patch matrix."""
    n, c, h, w = x.shape
    rows, cols, out_h, out_w = _im2col_indices(h, w, kh, kw, stride, dilation)
    patches = x[:, :, rows, cols]                     # (N, C, kh*kw, L)
    return patches.reshape(n, c * kh * kw, -1), out_h, out_w


def col2im(cols: np.ndarray, x_shape: tuple, kh: int, kw: int, stride: int,
           dilation: int = 1):
    """Adjoint of :func:`im2col` (scatter-add patches back)."""
    n, c, h, w = x_shape
    rows, cols_idx, out_h, out_w = _im2col_indices(h, w, kh, kw, stride,
                                                   dilation)
    cols = cols.reshape(n, c, kh * kw, -1)
    x = np.zeros(x_shape, dtype=cols.dtype)
    np.add.at(x, (slice(None), slice(None), rows, cols_idx), cols)
    return x


# Per-thread scratch arena for the inference conv kernel.  The big
# intermediates (channel-first padded image, GEMM-layout patch matrix,
# GEMM output) are reused across calls with the same geometry, which
# avoids the large-allocation churn (mmap + page faults each call)
# that otherwise dominates pass-stacked forwards.  Thread-local so
# sharded serving replicas running on a thread pool never share a
# buffer; the produced output is always a fresh array.
_conv_scratch = threading.local()


def _conv_scratch_buffers(key: tuple, shapes):
    cache = getattr(_conv_scratch, "cache", None)
    if cache is None:
        cache = _conv_scratch.cache = OrderedDict()
    bufs = cache.get(key)
    if bufs is None:
        bufs = shapes()
        cache[key] = bufs
        if len(cache) > 32:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)
    return bufs


def _gather_padded_patches(x: np.ndarray, kh: int, kw: int, stride: int,
                           padding: int, dilation: int, dtype: np.dtype,
                           tag: str = "conv"):
    """Arena-backed im2col gather straight into GEMM layout.

    Writes the (N, C, H, W) image interior into a zero-bordered
    channel-first scratch buffer (one pass, casting on the fly — the
    implicit zero-pad), then gathers it with the memoized flat index
    plan into a ``(C, KH·KW·L, N)`` patch slab.  Both buffers live in
    the per-thread scratch arena; ``padding`` is part of their key
    because the pad buffer relies on its border never being written,
    which an unpadded call with the same (h, w) would violate.  The
    border stays zero across reuses because only the interior is ever
    written.  Returns ``(patch_slab, out_h, out_w)``; a flat
    ``(C·KH·KW, L·N)`` view of the slab is a valid GEMM operand whose
    unfolded row axis is channel-major.  Callers with distinct
    consumption patterns pass their own ``tag`` so their slabs never
    alias.
    """
    n, c, h0, w0 = x.shape
    h, w = h0 + 2 * padding, w0 + 2 * padding
    _, _, out_h, out_w = _im2col_indices(h, w, kh, kw, stride, dilation)
    flat_idx = _flat_gather_indices(h, w, kh, kw, stride, dilation)
    key = (tag, n, c, h, w, kh, kw, stride, padding, dilation, dtype.str)
    xtl, patch_slab = _conv_scratch_buffers(
        key, lambda: (
            np.zeros((c, h, w, n), dtype=dtype),
            np.empty((c, kh * kw * out_h * out_w, n), dtype=dtype),
        ))
    interior = (slice(None),
                slice(padding, h - padding), slice(padding, w - padding))
    np.copyto(xtl[interior], x.transpose(1, 2, 3, 0))
    np.take(xtl.reshape(c, h * w, n), flat_idx, axis=1, out=patch_slab)
    return patch_slab, out_h, out_w


def _conv2d_infer(x: np.ndarray, weight: np.ndarray,
                  bias: Optional[np.ndarray], stride: int,
                  padding: int, dilation: int = 1,
                  groups: int = 1,
                  use_bitpack: Optional[bool] = None,
                  packed_weights=None) -> np.ndarray:
    """Inference conv kernel: gather straight into GEMM layout.

    Bit-identical to the im2col/einsum training path on binary data
    (the exact-integer route below) and identical to float64 rounding
    (1–2 ulp, from BLAS regrouping the reduction) on real-valued
    data; batched-vs-sequential MC parity always holds bitwise
    because both strategies run this same kernel.  Several times
    faster than the einsum path on the pass-stacked shapes, through
    three mechanisms:

    * the patch matrix is gathered by one ``np.take`` directly into
      the ``(C·KH·KW, L·N)`` layout a single BLAS call consumes — no
      batched einsum, no intermediate transpose copy, and the zero-pad
      happens implicitly by writing the image interior into a
      zero-bordered channel-first scratch buffer;
    * all large intermediates live in a per-thread scratch arena
      (see :data:`_conv_scratch`) reused across calls with the same
      geometry, sidestepping large-allocation churn;
    * binary (XNOR) convs take an *exact-integer* float32 route: when
      the kernel is ±1 and the activations are in {−1, 0, +1} (sign
      outputs, possibly dropout-masked), every partial sum is a small
      integer, which float32 represents exactly — half the memory
      traffic, bit-identical float64 results.  This is the software
      shadow of the paper's XNOR-popcount MAC: integer-exact
      arithmetic is what makes the crossbar readout (and this
      shortcut) lossless.

    Within the exact route, ``use_bitpack`` selects the bit-packed
    XNOR/popcount kernel of :mod:`repro.tensor.bitpack` (None = auto,
    True = force, False = float32 GEMM): the im2col slab is packed
    column-major into sign/active planes and each group's GEMM becomes
    a word-loop popcount, with bit-identical integer partial sums.
    ``packed_weights`` is a per-group list of pre-packed kernel
    operands (see :func:`repro.tensor.bitpack.pack_weight_groups`);
    when omitted under a forced route the kernel is packed per call,
    which is correct but costs more than the GEMV it replaces — the
    auto heuristic therefore only ever takes the packed route with
    pre-packed weights.
    """
    c_out, c_in_pg, kh, kw = weight.shape
    # Exact-integer route: products are ±x and |sum| <= C·KH·KW, far
    # inside float32's 2^24 exact-integer range.
    w_flat = weight.reshape(-1)
    exact_binary = (
        np.abs(w_flat).max(initial=0.0) == 1.0
        and np.abs(w_flat).min(initial=1.0) == 1.0
        and _is_exact_ternary(x))
    dtype = np.dtype(np.float32 if exact_binary else x.dtype)
    n, c, h0, w0 = x.shape
    if c != c_in_pg * groups:
        raise ValueError(
            f"input has {c} channels, weight expects {c_in_pg * groups} "
            f"({c_in_pg} per group x {groups} groups)")
    gather_buf, out_h, out_w = _gather_padded_patches(
        x, kh, kw, stride, padding, dilation, dtype)
    f_g, ln = c_in_pg * kh * kw, out_h * out_w * n
    (out_buf,) = _conv_scratch_buffers(
        ("conv_out", c_out, ln, dtype.str),
        lambda: (np.empty((c_out, ln), dtype=dtype),))
    packed = False
    if exact_binary:
        if use_bitpack is None:
            packed = (packed_weights is not None
                      and bitpack.packed_route_beneficial(
                          ln, f_g, c_out // groups))
        else:
            packed = bool(use_bitpack)
    if packed:
        if packed_weights is None:
            packed_weights = bitpack.pack_weight_groups(weight, groups)
        grouped_in = gather_buf.reshape(groups, f_g, ln)
        grouped_out = out_buf.reshape(groups, c_out // groups, ln)
        for g in range(groups):
            bitpack.packed_mvm(bitpack.pack_ternary_cols(grouped_in[g]),
                               packed_weights[g], out=grouped_out[g],
                               col_major=True)
    elif groups == 1:
        np.matmul(weight.reshape(c_out, -1).astype(dtype),
                  gather_buf.reshape(f_g, ln), out=out_buf)
    else:
        # Block-diagonal GEMM: the gather buffer's unfolded row axis is
        # channel-major, so each group's rows are one contiguous slab.
        np.matmul(weight.reshape(groups, c_out // groups, f_g).astype(dtype),
                  gather_buf.reshape(groups, f_g, ln),
                  out=out_buf.reshape(groups, c_out // groups, ln))
    out = np.ascontiguousarray(
        out_buf.reshape(c_out, out_h * out_w, n).transpose(2, 0, 1),
        dtype=np.float64).reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1)
    return out


def conv2d(x, weight, bias=None, stride: int = 1, padding: int = 0,
           dilation: int = 1, groups: int = 1) -> Tensor:
    """2-D convolution in NCHW layout.

    ``weight`` has shape (C_out, C_in/groups, KH, KW); ``groups``
    splits input and output channels into that many independent
    convolutions (depthwise when ``groups == C_in``), and ``dilation``
    spreads the kernel taps ``dilation`` pixels apart (à-trous
    convolution).  Implemented as im2col + matmul, which is also
    exactly how the CIM crossbar mapping strategy ① of Fig. 1 unrolls
    kernels into crossbar columns — the deployed
    :class:`repro.cim.CimConv2d` reuses the same im2col (and the same
    memoized index plans).  Inference (``no_grad``) takes a faster
    single-GEMM kernel with the same bit-level results — see
    :func:`_conv2d_infer`.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    c_out, c_in_pg, kh, kw = weight.data.shape
    if groups < 1 or dilation < 1:
        raise ValueError("groups and dilation must be >= 1")
    if c_out % groups:
        raise ValueError(f"out_channels {c_out} not divisible by "
                         f"groups {groups}")
    if x.data.shape[1] != c_in_pg * groups:
        raise ValueError(
            f"input has {x.data.shape[1]} channels, weight expects "
            f"{c_in_pg * groups} ({c_in_pg} per group x {groups} groups)")
    if not (is_grad_enabled()
            and (x.requires_grad or weight.requires_grad
                 or (bias is not None and as_tensor(bias).requires_grad))):
        bias_data = None if bias is None else as_tensor(bias).data
        return Tensor(_conv2d_infer(x.data, weight.data, bias_data,
                                    stride, padding, dilation, groups))
    if padding:
        x_padded = pad2d(x, padding)
    else:
        x_padded = x

    n = x_padded.data.shape[0]
    cols, out_h, out_w = im2col(x_padded.data, kh, kw, stride, dilation)
    c_out_pg, f_g = c_out // groups, c_in_pg * kh * kw
    if groups == 1:
        w_mat = weight.data.reshape(c_out, -1)        # (C_out, C_in*kh*kw)
        out = np.einsum("of,nfl->nol", w_mat, cols, optimize=True)
    else:
        # Channel-major unfolded rows: each group's patch rows are one
        # contiguous slab of the im2col matrix.
        w_mat = weight.data.reshape(groups, c_out_pg, f_g)
        cols_g = cols.reshape(n, groups, f_g, -1)
        out = np.einsum("gof,ngfl->ngol", w_mat, cols_g, optimize=True)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        bias = as_tensor(bias)
        out = out + bias.data.reshape(1, -1, 1, 1)

    parents = (x_padded, weight) if bias is None else (x_padded, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, c_out, -1)         # (N, C_out, L)
        if groups > 1:
            grad_mat = grad_mat.reshape(n, groups, c_out_pg, -1)
        if weight.requires_grad:
            if groups == 1:
                gw = np.einsum("nol,nfl->of", grad_mat, cols, optimize=True)
            else:
                gw = np.einsum("ngol,ngfl->gof", grad_mat, cols_g,
                               optimize=True)
            weight.accumulate_grad(gw.reshape(weight.data.shape))
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(grad.sum(axis=(0, 2, 3)))
        if x_padded.requires_grad:
            if groups == 1:
                gcols = np.einsum("of,nol->nfl", w_mat, grad_mat,
                                  optimize=True)
            else:
                gcols = np.einsum("gof,ngol->ngfl", w_mat, grad_mat,
                                  optimize=True).reshape(n, groups * f_g, -1)
            gx = col2im(gcols, x_padded.data.shape, kh, kw, stride, dilation)
            x_padded.accumulate_grad(gx)

    return Tensor.from_op(out, parents, backward)


def _max_pool2d_infer(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Inference pooling kernel: plain windowed max.

    No argmax pooling plan, no take_along_axis gather, no backward
    closure — bit-identical to the gradient path's forward (argmax
    selects the same maximal element).  When the activations are sign
    outputs (±1, possibly 0 under a channel mask) the window gather
    additionally runs in float32 — exact for those values, half the
    memory traffic on the pass-stack.
    """
    n, c, h, w = x.shape
    dtype = np.dtype(np.float32 if _is_exact_ternary(x) else x.dtype)
    _, _, out_h, out_w = _im2col_indices(h, w, kernel, kernel, stride)
    flat_idx = _flat_gather_indices(h, w, kernel, kernel, stride)
    k2, length = kernel * kernel, out_h * out_w
    key = ("pool", n * c, h, w, kernel, stride, dtype.str)
    (gather_buf,) = _conv_scratch_buffers(
        key, lambda: (
            np.empty((n * c, k2 * length), dtype=dtype),
        ))
    np.take(x.reshape(n * c, h * w).astype(dtype, copy=False), flat_idx,
            axis=1, out=gather_buf)
    out = gather_buf.reshape(n * c, k2, length).max(axis=1)
    return out.astype(np.float64).reshape(n, c, out_h, out_w)


def max_pool2d(x, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    x = as_tensor(x)
    stride = stride or kernel
    if not (is_grad_enabled() and x.requires_grad):
        return Tensor(_max_pool2d_infer(x.data, kernel, stride))
    n, c, h, w = x.data.shape
    cols, out_h, out_w = im2col(
        x.data.reshape(n * c, 1, h, w), kernel, kernel, stride)
    cols = cols.reshape(n * c, kernel * kernel, -1)
    arg = cols.argmax(axis=1)                          # (N*C, L)
    out = np.take_along_axis(cols, arg[:, None, :], axis=1)[:, 0, :]
    out_data = out.reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            gcols = np.zeros_like(cols)
            np.put_along_axis(
                gcols, arg[:, None, :],
                grad.reshape(n * c, 1, -1), axis=1)
            gx = col2im(gcols.reshape(n * c, kernel * kernel, -1),
                        (n * c, 1, h, w), kernel, kernel, stride)
            x.accumulate_grad(gx.reshape(n, c, h, w))

    return Tensor.from_op(out_data, (x,), backward)


def avg_pool2d(x, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    x = as_tensor(x)
    stride = stride or kernel
    n, c, h, w = x.data.shape
    cols, out_h, out_w = im2col(
        x.data.reshape(n * c, 1, h, w), kernel, kernel, stride)
    cols = cols.reshape(n * c, kernel * kernel, -1)
    out_data = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    k2 = kernel * kernel

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = np.repeat(grad.reshape(n * c, 1, -1), k2, axis=1) / k2
            gx = col2im(g, (n * c, 1, h, w), kernel, kernel, stride)
            x.accumulate_grad(gx.reshape(n, c, h, w))

    return Tensor.from_op(out_data, (x,), backward)


def upsample2d(x, factor: int = 2) -> Tensor:
    """Nearest-neighbour upsampling of NCHW tensors.

    The decoder primitive for the segmentation models (the paper's
    SpinBayes evaluation includes semantic segmentation).  Backward
    sums each output block's gradient back to its source pixel.
    """
    x = as_tensor(x)
    if x.data.ndim != 4:
        raise ValueError("upsample2d expects (N, C, H, W)")
    if factor < 1:
        raise ValueError("factor must be >= 1")
    n, c, h, w = x.data.shape
    # Single-copy expansion: a strided broadcast view materialized by
    # one reshape, instead of repeat()'s two sequential copies.
    out_data = np.ascontiguousarray(np.broadcast_to(
        x.data[:, :, :, None, :, None],
        (n, c, h, factor, w, factor))).reshape(
            n, c, h * factor, w * factor)
    if not (is_grad_enabled() and x.requires_grad):
        # Inference fast path: no backward closure, no tape node.
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = grad.reshape(n, c, h, factor, w, factor).sum(axis=(3, 5))
            x.accumulate_grad(g)

    return Tensor.from_op(out_data, (x,), backward)


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def _softmax_np(z: np.ndarray, axis: int) -> np.ndarray:
    z = z - z.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def softmax(a, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    out_data = _softmax_np(a.data, axis)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            a.accumulate_grad(out_data * (grad - dot))

    return Tensor.from_op(out_data, (a,), backward)


def log_softmax(a, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate_grad(
                grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor.from_op(out_data, (a,), backward)


def softmax_cross_entropy(logits, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and int ``labels`` (N,).

    Fused for numerical stability; the classification loss used by
    every NeuSpin method's training objective.
    """
    logits = as_tensor(logits)
    labels = np.asarray(labels, dtype=np.int64)
    n = logits.data.shape[0]
    probs = _softmax_np(logits.data, axis=-1)
    nll = -np.log(np.maximum(probs[np.arange(n), labels], 1e-300))
    out_data = np.asarray(nll.mean())

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            g = probs.copy()
            g[np.arange(n), labels] -= 1.0
            logits.accumulate_grad(grad * g / n)

    return Tensor.from_op(out_data, (logits,), backward)
