"""Reverse-mode automatic differentiation over numpy arrays.

This is the training substrate for the whole reproduction: every
NeuSpin method (SpinDrop, Spatial-SpinDrop, SpinScaleDrop, inverted
normalization with affine dropout, Bayesian subset-parameter
inference, SpinBayes) is a training objective plus stochastic layers,
so a small but correct autograd engine is the first substrate to
build.  The engine is deliberately minimal — dynamic graph, define-by-
run, broadcasting-aware — and exposes the handful of primitives the
paper's methods need, including a straight-through-estimator ``sign``
for binary networks and sampling nodes for the Bayesian layers.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional
from repro.tensor.functional import (
    add,
    avg_pool2d,
    concat,
    conv2d,
    exp,
    leaky_relu,
    log,
    log_softmax,
    matmul,
    max_pool2d,
    maximum,
    mean,
    mul,
    relu,
    reshape,
    sigmoid,
    sign_ste,
    softmax,
    softmax_cross_entropy,
    sqrt,
    sum as sum_,
    tanh,
    transpose,
    where,
)
from repro.tensor.gradcheck import gradcheck

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "gradcheck",
    "add",
    "avg_pool2d",
    "concat",
    "conv2d",
    "exp",
    "leaky_relu",
    "log",
    "log_softmax",
    "matmul",
    "max_pool2d",
    "maximum",
    "mean",
    "mul",
    "relu",
    "reshape",
    "sigmoid",
    "sign_ste",
    "softmax",
    "softmax_cross_entropy",
    "sqrt",
    "sum_",
    "tanh",
    "transpose",
    "where",
]
