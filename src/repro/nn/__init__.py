"""Neural-network building blocks on top of :mod:`repro.tensor`.

Deterministic layers, binary (±1) layers for spintronic deployment,
inverted normalization, recurrent cells, losses with the NeuSpin
regularizers, and optimizers.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    HardTanh,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    SignActivation,
    Tanh,
    Upsample2d,
)
from repro.nn.binary import BinaryConv2d, BinaryLinear, clip_latent_weights
from repro.nn.normalization import InvertedNorm
from repro.nn.recurrent import GRUCell, RNNCell, SequenceRegressor
from repro.nn import losses, optim
from repro.nn.losses import accuracy, cross_entropy, gaussian_kl, mse, scale_regularizer
from repro.nn.optim import SGD, Adam, CosineLR, StepLR

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "Tanh",
    "HardTanh",
    "SignActivation",
    "MaxPool2d",
    "AvgPool2d",
    "Upsample2d",
    "Flatten",
    "Dropout",
    "Sequential",
    "BinaryLinear",
    "BinaryConv2d",
    "clip_latent_weights",
    "InvertedNorm",
    "RNNCell",
    "GRUCell",
    "SequenceRegressor",
    "losses",
    "optim",
    "cross_entropy",
    "mse",
    "accuracy",
    "scale_regularizer",
    "gaussian_kl",
    "SGD",
    "Adam",
    "StepLR",
    "CosineLR",
]
