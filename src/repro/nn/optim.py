"""Optimizers and learning-rate schedules.

SGD with momentum and Adam cover everything the paper's methods train
with ("can be trained using stochastic gradient descent",
Sec. III-A.3); both support per-call weight decay.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding the parameter list and zero_grad."""

    def __init__(self, params: Iterable[Parameter]):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimizer LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class CosineLR:
    """Cosine annealing from the initial LR to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0):
        self.optimizer = optimizer
        self.t_max = t_max
        self.min_lr = min_lr
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.t_max)
        cos = 0.5 * (1.0 + math.cos(math.pi * self._epoch / self.t_max))
        self.optimizer.lr = self.min_lr + (self._base_lr - self.min_lr) * cos
