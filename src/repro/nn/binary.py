"""Binary (±1-weight) layers for spintronic deployment.

The NeuSpin methods are built on binary Bayesian NNs (BinBayNN,
Sec. III-A.1): MTJs have exactly two stable states (P/AP), so the
weights stored in the crossbar must be ±1 and the MAC becomes an XNOR/
popcount.  Training keeps latent full-precision weights and binarizes
through a straight-through estimator on each forward pass; a learned
per-layer (or per-output-channel) *scale* restores dynamic range —
that scale vector is exactly the object SpinScaleDrop and Bayesian
subset-parameter inference make stochastic.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.tensor import Tensor, bitpack, functional as F, is_grad_enabled
from repro.tensor.functional import _conv2d_infer
from repro.nn.module import Module, Parameter


class BinaryLinear(Module):
    """Linear layer with sign-binarized weights and a learnable scale.

    Forward: ``y = (x · sign(W)^T) * alpha + b`` where ``alpha`` is a
    per-output-feature positive scale.  ``sign`` uses the hard-tanh STE
    (see :func:`repro.tensor.functional.sign_ste`).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 scale: bool = True, binarize_input: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.binarize_input = binarize_input
        bound = math.sqrt(6.0 / in_features)
        self.weight = Parameter(
            rng.uniform(-bound, bound, size=(out_features, in_features)))
        self.scale = Parameter(np.ones(out_features)) if scale else None
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def binary_weight(self) -> Tensor:
        return F.sign_ste(self.weight)

    def forward(self, x: Tensor) -> Tensor:
        if self.binarize_input:
            x = F.sign_ste(x)
        out = F.matmul(x, F.transpose(self.binary_weight()))
        if self.scale is not None:
            out = out * self.scale
        if self.bias is not None:
            out = out + self.bias
        return out


class BinaryConv2d(Module):
    """Convolution with sign-binarized kernels and per-channel scale.

    Supports ``groups`` / ``dilation`` like :class:`repro.nn.Conv2d`;
    the deployed :class:`repro.cim.CimConv2d` mirrors both (grouped
    kernels map to independent crossbar grids, dilation only changes
    the im2col plan feeding the wordlines).

    ``use_bitpack`` (None = auto, True = force, False = off) selects
    the bit-packed XNOR/popcount kernel on the no-grad inference path,
    bit-identical to the float route.  With the route forced on, the
    packed kernel operand is cached across inference calls and dropped
    on every grad-mode forward (a training step is about to move the
    weights); code that mutates ``weight.data`` outside training must
    call :meth:`invalidate_bitpack` itself.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 scale: bool = True, binarize_input: bool = False,
                 dilation: int = 1, groups: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        if in_channels % groups or out_channels % groups:
            raise ValueError("in_channels and out_channels must be "
                             "divisible by groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        self.groups = groups
        self.binarize_input = binarize_input
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        bound = math.sqrt(6.0 / fan_in)
        self.weight = Parameter(rng.uniform(
            -bound, bound,
            size=(out_channels, in_channels // groups,
                  kernel_size, kernel_size)))
        self.scale = Parameter(np.ones(out_channels)) if scale else None
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self.use_bitpack: Optional[bool] = None
        self._packed_weight = None     # per-group PackedWeights cache

    def binary_weight(self) -> Tensor:
        return F.sign_ste(self.weight)

    def invalidate_bitpack(self) -> None:
        """Drop the cached packed kernel (weights changed)."""
        self._packed_weight = None

    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            return Tensor(self._forward_infer(x.data))
        self._packed_weight = None     # training step: weights will move
        if self.binarize_input:
            x = F.sign_ste(x)
        out = F.conv2d(x, self.binary_weight(), bias=None,
                       stride=self.stride, padding=self.padding,
                       dilation=self.dilation, groups=self.groups)
        if self.scale is not None:
            out = out * F.reshape(self.scale, (1, -1, 1, 1))
        if self.bias is not None:
            out = out + F.reshape(self.bias, (1, -1, 1, 1))
        return out

    def _forward_infer(self, x: np.ndarray) -> np.ndarray:
        """No-tape forward: same op sequence on raw ndarrays (scale
        and bias applied in place on the fresh conv output), feeding
        the inference conv kernel directly — bit-identical to the
        Tensor path, minus its allocations."""
        if self.binarize_input:
            x = np.where(x >= 0, 1.0, -1.0)
        w = np.where(self.weight.data >= 0, 1.0, -1.0)
        if self.use_bitpack and self._packed_weight is None:
            self._packed_weight = bitpack.pack_weight_groups(w, self.groups)
        out = _conv2d_infer(x, w, None, self.stride, self.padding,
                            self.dilation, self.groups,
                            use_bitpack=self.use_bitpack,
                            packed_weights=self._packed_weight)
        if self.scale is not None:
            out *= self.scale.data.reshape(1, -1, 1, 1)
        if self.bias is not None:
            out += self.bias.data.reshape(1, -1, 1, 1)
        return out


def clip_latent_weights(module: Module, bound: float = 1.0) -> None:
    """Clamp latent weights of all binary layers into [-bound, bound].

    Standard BinaryNet trick: keeps latent weights inside the STE
    window so gradients never die permanently.  Call after each
    optimizer step.
    """
    for sub in module.modules():
        if isinstance(sub, (BinaryLinear, BinaryConv2d)):
            np.clip(sub.weight.data, -bound, bound, out=sub.weight.data)
