"""Standard layers: linear, convolution, normalization, pooling, dropout.

These are the deterministic building blocks; the Bayesian/stochastic
layers live in :mod:`repro.bayesian`, and the binary (±1) variants used
for spintronic deployment live in :mod:`repro.nn.binary`.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.tensor import Tensor, functional as F, is_grad_enabled
from repro.nn.module import Module, Parameter


def _kaiming_uniform(fan_in: int, shape: tuple,
                     rng: np.random.Generator) -> np.ndarray:
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with Kaiming-uniform init."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _kaiming_uniform(in_features, (out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = F.matmul(x, F.transpose(self.weight))
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution (NCHW) with optional ``groups`` / ``dilation``."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 dilation: int = 1, groups: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        if in_channels % groups or out_channels % groups:
            raise ValueError("in_channels and out_channels must be "
                             "divisible by groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.weight = Parameter(_kaiming_uniform(
            fan_in, (out_channels, in_channels // groups,
                     kernel_size, kernel_size), rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding,
                        dilation=self.dilation, groups=self.groups)


class _BatchNormBase(Module):
    """Shared machinery for 1-D/2-D batch normalization."""

    def __init__(self, num_features: int, momentum: float = 0.1,
                 eps: float = 1e-5, affine: bool = True):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.affine = affine
        if affine:
            self.gamma = Parameter(np.ones(num_features))
            self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def _axes(self, x: Tensor) -> tuple:
        raise NotImplementedError

    def _shape(self, x: Tensor) -> tuple:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        axes = self._axes(x)
        shape = self._shape(x)
        if not self.training and not is_grad_enabled():
            # Inference fast path: running-stats normalization as raw
            # ufuncs — the same operation sequence as the Tensor ops
            # below (bit-identical results: the in-place updates hit
            # the same values in the same order), minus the tape
            # machinery and intermediate allocations.
            out = x.data - self.running_mean.reshape(shape)
            out /= np.sqrt(self.running_var.reshape(shape) + self.eps)
            if self.affine:
                out *= self.gamma.data.reshape(shape)
                out += self.beta.data.reshape(shape)
            return Tensor(out)
        if self.training:
            mu = F.mean(x, axis=axes, keepdims=True)
            centered = x - mu
            variance = F.mean(centered * centered, axis=axes, keepdims=True)
            m = self.momentum
            self.update_buffer(
                "running_mean",
                (1 - m) * self.running_mean + m * mu.data.reshape(-1))
            self.update_buffer(
                "running_var",
                (1 - m) * self.running_var + m * variance.data.reshape(-1))
            x_hat = centered / F.sqrt(variance, eps=self.eps)
        else:
            mu = Tensor(self.running_mean.reshape(shape))
            variance = Tensor(self.running_var.reshape(shape))
            x_hat = (x - mu) / F.sqrt(variance, eps=self.eps)
        if self.affine:
            gamma = F.reshape(self.gamma, shape)
            beta = F.reshape(self.beta, shape)
            return x_hat * gamma + beta
        return x_hat


class BatchNorm1d(_BatchNormBase):
    """Batch normalization over (N, F) activations."""

    def _axes(self, x: Tensor) -> tuple:
        return (0,)

    def _shape(self, x: Tensor) -> tuple:
        return (1, self.num_features)


class BatchNorm2d(_BatchNormBase):
    """Batch normalization over (N, C, H, W) activations."""

    def _axes(self, x: Tensor) -> tuple:
        return (0, 2, 3)

    def _shape(self, x: Tensor) -> tuple:
        return (1, self.num_features, 1, 1)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class HardTanh(Module):
    """Hard-tanh activation — the standard pre-binarization activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.hardtanh(x)


class SignActivation(Module):
    """Binarizing activation: ±1 forward, straight-through backward.

    The activation of XNOR-style binary networks; deployment maps it to
    a sense-amplifier readout (:class:`repro.cim.layers.DigitalSign`),
    so train-time and deployed activations match bit-for-bit.
    """

    def forward(self, x: Tensor) -> Tensor:
        return F.sign_ste(x)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.reshape(x, (x.shape[0], -1))


class Upsample2d(Module):
    """Nearest-neighbour ×factor upsampling (segmentation decoder stage)."""

    def __init__(self, factor: int = 2):
        super().__init__()
        self.factor = factor

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample2d(x, self.factor)


class Dropout(Module):
    """Conventional inverted dropout with an ideal (software) RNG.

    This is the CMOS baseline the paper's spintronic dropout modules
    replace; :class:`repro.bayesian.SpinDropout` has identical
    semantics but draws its mask bits from the MTJ device model.
    """

    def __init__(self, p: float = 0.5,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng()
        self.always_on = False  # set True for MC-dropout at inference

    def forward(self, x: Tensor) -> Tensor:
        if self.p == 0.0 or not (self.training or self.always_on):
            return x
        keep = 1.0 - self.p
        mask = self.rng.random(x.shape) < keep
        return x * Tensor(mask / keep)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)
