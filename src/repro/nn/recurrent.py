"""Recurrent cells for the time-series experiments (Sec. III-A.4).

The paper reports that inverted normalization + affine dropout cuts
RMSE on LSTM-based time-series prediction by up to 46.7%.  The claim
is about the *method*, not the cell, so we provide Elman and GRU cells
(lighter than LSTM, same recurrent code path) plus a small sequence
regressor used by the claims benchmark C4.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.tensor import Tensor, functional as F
from repro.nn.module import Module, Parameter
from repro.nn.layers import Linear
from repro.nn.normalization import InvertedNorm


def _uniform(rng: np.random.Generator, fan_in: int, shape: tuple) -> np.ndarray:
    bound = 1.0 / math.sqrt(fan_in)
    return rng.uniform(-bound, bound, size=shape)


class RNNCell(Module):
    """Elman cell: ``h' = tanh(x W_x^T + h W_h^T + b)``."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Parameter(_uniform(rng, input_size, (hidden_size, input_size)))
        self.w_h = Parameter(_uniform(rng, hidden_size, (hidden_size, hidden_size)))
        self.bias = Parameter(np.zeros(hidden_size))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        pre = (F.matmul(x, F.transpose(self.w_x))
               + F.matmul(h, F.transpose(self.w_h)) + self.bias)
        return F.tanh(pre)


class GRUCell(Module):
    """Gated recurrent unit cell."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        for gate in ("z", "r", "n"):
            setattr(self, f"w_x{gate}", Parameter(
                _uniform(rng, input_size, (hidden_size, input_size))))
            setattr(self, f"w_h{gate}", Parameter(
                _uniform(rng, hidden_size, (hidden_size, hidden_size))))
            setattr(self, f"b_{gate}", Parameter(np.zeros(hidden_size)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        z = F.sigmoid(F.matmul(x, F.transpose(self.w_xz))
                      + F.matmul(h, F.transpose(self.w_hz)) + self.b_z)
        r = F.sigmoid(F.matmul(x, F.transpose(self.w_xr))
                      + F.matmul(h, F.transpose(self.w_hr)) + self.b_r)
        n = F.tanh(F.matmul(x, F.transpose(self.w_xn))
                   + F.matmul(h * r, F.transpose(self.w_hn)) + self.b_n)
        one = Tensor(np.ones_like(z.data))
        return (one - z) * n + z * h


class SequenceRegressor(Module):
    """Many-to-one sequence regressor: RNN/GRU encoder + linear head.

    Optionally inserts an :class:`InvertedNorm` between the final
    hidden state and the head — the configuration the affine-dropout
    time-series experiment compares against a plain head.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 cell: str = "gru", inverted_norm: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        if cell == "gru":
            self.cell = GRUCell(input_size, hidden_size, rng=rng)
        elif cell == "rnn":
            self.cell = RNNCell(input_size, hidden_size, rng=rng)
        else:
            raise ValueError(f"unknown cell type {cell!r}")
        self.hidden_size = hidden_size
        self.norm = InvertedNorm(hidden_size) if inverted_norm else None
        self.head = Linear(hidden_size, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """``x`` has shape (N, T, D); returns (N, 1) predictions."""
        n, t, _ = x.shape
        h = Tensor(np.zeros((n, self.hidden_size)))
        for step in range(t):
            h = self.cell(x[:, step, :], h)
        if self.norm is not None:
            h = self.norm(h)
        return self.head(h)
