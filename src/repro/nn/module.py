"""``Module``/``Parameter`` system (a compact nn.Module analogue).

Modules register parameters and sub-modules automatically via
``__setattr__``, expose recursive iteration, train/eval mode, and
state-dict (de)serialization to ``.npz``.  Every NeuSpin method in
:mod:`repro.bayesian` and every CIM-deployed layer in :mod:`repro.cim`
builds on this.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor; always created with ``requires_grad=True``."""

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances
    as attributes; they are picked up automatically for optimization,
    mode switching, and serialization.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track a non-trainable array (e.g. batch-norm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix + mod_name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix + mod_name + ".")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state["buffer::" + name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        for name, value in state.items():
            if name.startswith("buffer::"):
                self._load_buffer(name[len("buffer::"):], value)
            else:
                if name not in params:
                    raise KeyError(f"unexpected parameter {name!r}")
                if params[name].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name!r}: "
                        f"{params[name].data.shape} vs {value.shape}")
                params[name].data = value.copy()

    def _load_buffer(self, dotted: str, value: np.ndarray) -> None:
        parts = dotted.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._modules[part]
        module.update_buffer(parts[-1], value.copy())

    def save(self, path: str) -> None:
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        with np.load(path) as archive:
            self.load_state_dict({k: archive[k] for k in archive.files})

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
