"""Loss functions and the NeuSpin regularizers.

Besides standard classification/regression losses, this module carries
the two paper-specific regularization terms:

* :func:`scale_regularizer` — SpinScaleDrop's "novel regularization
  function for the scale vector to encourage it to be positive and
  centered around one" (Sec. III-A.3).
* :func:`gaussian_kl` — the KL divergence between a diagonal Gaussian
  posterior and prior, the VI term of Bayesian subset-parameter
  inference (Sec. III-B.1).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.tensor import Tensor, functional as F


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy (fused, numerically stable)."""
    return F.softmax_cross_entropy(logits, labels)


def mse(pred: Tensor, target) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    return F.mean(diff * diff)


def nll_from_probs(probs: np.ndarray, labels: np.ndarray) -> float:
    """Negative log-likelihood of averaged predictive probabilities.

    Evaluation-side metric (no autograd): used for the dataset-shift
    NLL claim of Sec. III-B.1.
    """
    labels = np.asarray(labels, dtype=np.int64)
    picked = probs[np.arange(len(labels)), labels]
    return float(-np.log(np.maximum(picked, 1e-12)).mean())


def scale_regularizer(scales: Iterable[Tensor], strength: float = 1e-3,
                      center: float = 1.0) -> Tensor:
    """Penalty pulling scale vectors toward ``center`` (default 1).

    ``sum_l strength * mean((s_l - center)^2)`` — quadratic around one,
    which both keeps scales positive in practice and matches the ±1
    binary-weight regime the paper pairs it with.  An additional hinge
    on negative values enforces positivity explicitly.
    """
    total: Tensor | None = None
    for scale in scales:
        centered = scale - center
        term = F.mean(centered * centered)
        # Hinge: penalize negative entries (relu(-s)^2).
        neg = F.relu(Tensor(np.zeros_like(scale.data)) - scale)
        term = term + F.mean(neg * neg)
        total = term if total is None else total + term
    if total is None:
        return Tensor(np.asarray(0.0))
    return total * strength


def gaussian_kl(mu: Tensor, log_sigma: Tensor,
                prior_mu: float = 1.0, prior_sigma: float = 0.1) -> Tensor:
    """KL( N(mu, sigma^2) || N(prior_mu, prior_sigma^2) ), summed.

    The prior defaults to N(1, 0.1^2): scale vectors live around one
    (they multiply binary ±1 weights), so the prior is centered there
    rather than at zero.
    """
    sigma2 = F.exp(log_sigma * 2.0)
    prior_var = prior_sigma ** 2
    centered = mu - prior_mu
    kl = (F.sum(sigma2) / prior_var
          + F.sum(centered * centered) / prior_var
          - Tensor(np.asarray(float(mu.size)))
          + Tensor(np.asarray(float(mu.size))) * (2.0 * np.log(prior_sigma))
          - F.sum(log_sigma * 2.0))
    return kl * 0.5


def accuracy(logits_or_probs: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy from raw logits or probabilities."""
    pred = np.asarray(logits_or_probs).argmax(axis=-1)
    return float((pred == np.asarray(labels)).mean())
