"""Inverted normalization (Sec. III-A.4).

Traditional batch/layer norm normalizes first and then applies an
optional affine transform.  The NeuSpin "inverted normalization" layer
flips the order: the affine transform (``gamma * x + beta``, with the
affine parameters trained like ordinary weights) is applied *before*
normalization.  Applied to CIM, the affine stage absorbs the
conductance-variation-induced shift/scale of the crossbar output
before statistics are computed, which is what gives the layer its
self-healing behaviour; the companion Affine Dropout (in
:mod:`repro.bayesian.affine`) makes the affine parameters stochastic
to turn the layer into a Bayesian approximation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor import Tensor, functional as F
from repro.nn.module import Module, Parameter


class InvertedNorm(Module):
    """Affine-then-normalize layer for (N, F) or (N, C, H, W) inputs.

    Parameters
    ----------
    num_features:
        Feature (or channel) count the affine parameters span.
    spatial:
        ``True`` for NCHW inputs (per-channel statistics), ``False``
        for flat (N, F) activations.
    momentum, eps:
        Running-statistics update rate and variance floor, as in
        standard batch norm.
    """

    def __init__(self, num_features: int, spatial: bool = False,
                 momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.spatial = spatial
        self.momentum = momentum
        self.eps = eps
        # Affine parameters trained by gradient descent exactly like
        # weights/biases (paper: "treats the affine parameters ... as
        # similar to the weights and biases of the NN").
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))
        # Hook point for Affine Dropout: scalar multipliers applied to
        # gamma/beta each forward pass.  ``None`` means deterministic.
        self._gamma_mask: Optional[float] = None
        self._beta_mask: Optional[float] = None

    # ------------------------------------------------------------------
    def set_affine_masks(self, gamma_mask, beta_mask) -> None:
        """Install dropout masks for the next forward pass.

        Affine Dropout semantics (Sec. III-A.4): a dropped *weight*
        (gamma) is replaced by one and a dropped *bias* (beta) by zero,
        i.e. ``gamma' = m_g * gamma + (1 - m_g)`` and
        ``beta' = m_b * beta``.  Masks are scalars for one MC pass, or
        1-D arrays of per-row values (one entry per sample of a stacked
        ``(T·N, …)`` batch) in the batched MC path.
        """
        self._gamma_mask = gamma_mask
        self._beta_mask = beta_mask

    def _mask_operand(self, mask):
        """Align a per-row mask bank against the batch axis."""
        if mask is None or np.ndim(mask) == 0:
            return mask
        extra = 3 if self.spatial else 1
        return np.asarray(mask, dtype=np.float64).reshape(
            (-1,) + (1,) * extra)

    def _param_shape(self) -> Tuple[int, ...]:
        return (1, self.num_features, 1, 1) if self.spatial else (1, self.num_features)

    def _axes(self) -> Tuple[int, ...]:
        return (0, 2, 3) if self.spatial else (0,)

    def forward(self, x: Tensor) -> Tensor:
        shape = self._param_shape()
        gamma = F.reshape(self.gamma, shape)
        beta = F.reshape(self.beta, shape)
        if self._gamma_mask is not None:
            # m=1 keeps gamma, m=0 replaces it with identity (one).
            gamma_mask = self._mask_operand(self._gamma_mask)
            gamma = gamma * gamma_mask + (1.0 - gamma_mask)
        if self._beta_mask is not None:
            beta = beta * self._mask_operand(self._beta_mask)

        # Affine first (the "inverted" part) ...
        transformed = x * gamma + beta

        # ... then normalize the transformed activations.
        axes = self._axes()
        if self.training:
            mu = F.mean(transformed, axis=axes, keepdims=True)
            centered = transformed - mu
            variance = F.mean(centered * centered, axis=axes, keepdims=True)
            m = self.momentum
            self.update_buffer(
                "running_mean",
                (1 - m) * self.running_mean + m * mu.data.reshape(-1))
            self.update_buffer(
                "running_var",
                (1 - m) * self.running_var + m * variance.data.reshape(-1))
            return centered / F.sqrt(variance, eps=self.eps)
        mu = Tensor(self.running_mean.reshape(shape))
        variance = Tensor(self.running_var.reshape(shape))
        return (transformed - mu) / F.sqrt(variance, eps=self.eps)
