"""NeuSpin reproduction: spintronic Bayesian neuromorphic CIM system.

Full behavioural reproduction of *NeuSpin: Design of a Reliable Edge
Neuromorphic System Based on Spintronics for Green AI* (DATE 2024,
arXiv:2401.06195): the six Bayesian-on-spintronics methods of the
NeuSpin project plus every substrate they need — a numpy autograd
training stack, MTJ device physics, crossbar CIM simulation, energy
accounting, uncertainty metrics and synthetic datasets.

Package map
-----------
``repro.tensor``      reverse-mode autograd over numpy
``repro.nn``          layers / binary layers / losses / optimizers
``repro.devices``     MTJ physics, variability, defects, RNG, arbiter
``repro.cim``         crossbars, ADC, mapping strategies, deployment
``repro.bayesian``    the six NeuSpin methods + baselines
``repro.uncertainty`` entropy/MI metrics, calibration, OOD detection
``repro.energy``      op pricing, analytic network specs, Table-I engine
``repro.data``        synthetic datasets, corruptions, OOD sources
``repro.experiments`` harnesses regenerating each table/figure/claim
"""

__version__ = "1.0.0"

from repro import tensor  # noqa: F401  (import-order anchor)

__all__ = ["tensor", "__version__"]
