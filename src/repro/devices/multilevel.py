"""Multi-level cells composed of parallel MTJs.

Sec. II-A: "SOT-MRAM ... allows also for the integration of multiple
MTJs on the same layer, simulating a multi-value cell", and
Sec. III-B: "a multi-level device composed of multiple MTJs is
implemented to quantitatively represent Bayesian parameters" /
"novel MTJ-based multi-value cells for quantized weight storage".

A cell of ``n_mtjs`` parallel junctions exposes ``n_mtjs + 1``
conductance levels: with ``k`` junctions in the P state the total
conductance is ``k·g_p + (n−k)·g_ap``.  Levels are equally spaced in
conductance, which is exactly what uniform post-training quantization
of a bounded parameter needs (SpinBayes quantization, Sec. III-B.2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.devices.mtj import MTJParams
from repro.devices.variability import DeviceVariability


class MultiLevelCell:
    """A bank of multi-level cells backed by parallel MTJs.

    Vectorized: one instance models an entire crossbar's worth of
    cells (``shape``), each storing an integer level in
    ``[0, n_mtjs]``.
    """

    def __init__(self, shape: tuple, n_mtjs: int = 4,
                 mtj_params: Optional[MTJParams] = None,
                 variability: Optional[DeviceVariability] = None,
                 rng: Optional[np.random.Generator] = None):
        if n_mtjs < 1:
            raise ValueError("need at least one MTJ per cell")
        self.shape = tuple(shape)
        self.n_mtjs = n_mtjs
        self.params = mtj_params or MTJParams()
        self.variability = variability
        self.rng = rng or np.random.default_rng()
        self.levels = np.zeros(self.shape, dtype=np.int64)
        # Per-cell per-junction conductance realizations.
        g_p, g_ap = self.params.g_p, self.params.g_ap
        junction_shape = self.shape + (n_mtjs,)
        if variability is not None:
            r_p = variability.sample_resistances(self.params.r_p, junction_shape)
            self._g_p = 1.0 / r_p
            self._g_ap = 1.0 / (r_p * (1.0 + self.params.tmr))
        else:
            self._g_p = np.full(junction_shape, g_p)
            self._g_ap = np.full(junction_shape, g_ap)
        self.writes = 0
        self.reads = 0

    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        return self.n_mtjs + 1

    def program(self, levels: np.ndarray) -> None:
        """Program integer levels (junctions written deterministically)."""
        levels = np.asarray(levels, dtype=np.int64)
        if levels.shape != self.shape:
            raise ValueError(f"level shape {levels.shape} != cell shape {self.shape}")
        if levels.min() < 0 or levels.max() > self.n_mtjs:
            raise ValueError(f"levels must be in [0, {self.n_mtjs}]")
        self.levels = levels.copy()
        self.writes += int(np.prod(self.shape)) * self.n_mtjs

    def conductances(self, read_noise: bool = False) -> np.ndarray:
        """Total cell conductance: k junctions P + (n−k) junctions AP."""
        k = self.levels[..., None] > np.arange(self.n_mtjs)
        g = np.where(k, self._g_p, self._g_ap).sum(axis=-1)
        self.reads += int(np.prod(self.shape))
        if read_noise and self.variability is not None:
            g = self.variability.read_noise(g)
        return g

    # ------------------------------------------------------------------
    def quantize_to_levels(self, values: np.ndarray,
                           v_min: float, v_max: float) -> np.ndarray:
        """Uniformly quantize real values into this cell's level grid."""
        if v_max <= v_min:
            raise ValueError("v_max must exceed v_min")
        clipped = np.clip(values, v_min, v_max)
        scaled = (clipped - v_min) / (v_max - v_min) * self.n_mtjs
        return np.rint(scaled).astype(np.int64)

    def levels_to_values(self, levels: np.ndarray,
                         v_min: float, v_max: float) -> np.ndarray:
        """Map integer levels back to the represented real values."""
        return v_min + levels.astype(np.float64) / self.n_mtjs * (v_max - v_min)

    def represented_values(self, v_min: float, v_max: float,
                           read_noise: bool = False) -> np.ndarray:
        """Decode stored values from *measured* conductances.

        Converts each cell's analog conductance back to the value
        scale, so device variability shows up as value error — the
        quantity the SpinBayes quantization exploration trades against
        bit precision.
        """
        g = self.conductances(read_noise=read_noise)
        g_min = self._g_ap.sum(axis=-1)   # all junctions AP -> level 0
        g_max = self._g_p.sum(axis=-1)    # all junctions P  -> level n
        frac = (g - g_min) / np.maximum(g_max - g_min, 1e-18)
        return v_min + np.clip(frac, 0.0, 1.0) * (v_max - v_min)
