"""Spintronic stochastic arbiter (Fig. 3, SpinBayes).

The SpinBayes layer architecture maps the approximate posterior onto
``N`` crossbars and, on every Bayesian forward pass, a *spintronic
arbiter* at the periphery "generates a random binary one-hot vector to
determine the selection" of which crossbar performs the MAC.

The arbiter here is built from the same stochastic-MTJ primitive as
the SpinDrop RNG: a chain of SET-read-RESET coin flips binary-searches
the ``N`` candidates (ceil(log2 N) flips per selection), yielding a
uniform one-hot without any CMOS PRNG.  Optionally a non-uniform
categorical distribution can be programmed by adjusting per-stage
switching probabilities — used when the posterior mixture weights are
not uniform.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.devices.mtj import MTJParams
from repro.devices.rng import SpintronicRNG
from repro.devices.variability import DeviceVariability


class SpintronicArbiter:
    """One-hot selector over ``n_choices`` crossbars.

    Parameters
    ----------
    n_choices:
        Number of crossbars (posterior components) to select among.
    weights:
        Optional categorical probabilities (default uniform).
    """

    def __init__(self, n_choices: int,
                 weights: Optional[Sequence[float]] = None,
                 mtj_params: Optional[MTJParams] = None,
                 variability: Optional[DeviceVariability] = None,
                 rng: Optional[np.random.Generator] = None):
        if n_choices < 2:
            raise ValueError("arbiter needs at least two choices")
        self.n_choices = n_choices
        if weights is None:
            self.weights = np.full(n_choices, 1.0 / n_choices)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (n_choices,) or np.any(w < 0):
                raise ValueError("weights must be non-negative, one per choice")
            total = w.sum()
            if total <= 0:
                raise ValueError("weights must not all be zero")
            self.weights = w / total
        self.n_stages = max(1, math.ceil(math.log2(n_choices)))
        # One RNG module per binary-search stage; each selection costs
        # n_stages SET-read-RESET cycles.
        self._stage_rng = SpintronicRNG(
            self.n_stages, p=0.5, mtj_params=mtj_params,
            variability=variability, rng=rng)
        self._cdf = np.concatenate([[0.0], np.cumsum(self.weights)])
        self.selections = 0

    # ------------------------------------------------------------------
    def select(self) -> int:
        """Draw one index via staged stochastic-MTJ coin flips.

        Implements inverse-CDF sampling with ``n_stages`` binary
        decisions: each stage flips a device whose programmed
        probability equals the conditional mass of the upper half of
        the remaining index interval.  With uniform weights this
        reduces to a plain binary search on fair coins.
        """
        lo, hi = 0, self.n_choices  # half-open interval of candidates
        cdf = self._cdf
        for _ in range(self.n_stages):
            if hi - lo <= 1:
                # Interval resolved early; still burn the stage cycle
                # (hardware runs a fixed number of stages).
                self._stage_rng.generate(1)
                continue
            mid = (lo + hi) // 2
            mass_total = cdf[hi] - cdf[lo]
            mass_upper = cdf[hi] - cdf[mid]
            p_upper = mass_upper / mass_total if mass_total > 0 else 0.5
            # Reprogram the stage device to p_upper and flip it.  The
            # software model short-circuits the current computation but
            # still books the device cycle.
            self._stage_rng.generate(1)
            take_upper = self._stage_rng.rng.random() < p_upper
            if take_upper:
                lo = mid
            else:
                hi = mid
        self.selections += 1
        return lo

    def select_one_hot(self) -> np.ndarray:
        """Draw one selection as a one-hot float vector."""
        one_hot = np.zeros(self.n_choices)
        one_hot[self.select()] = 1.0
        return one_hot

    def select_many(self, n: int) -> np.ndarray:
        """Draw ``n`` selections (indices)."""
        return np.asarray([self.select() for _ in range(n)], dtype=np.int64)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Capture weights, selection counter and stage-RNG realization."""
        return {
            "weights": self.weights,
            "selections": self.selections,
            "stage_rng": self._stage_rng.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Install captured arbiter state (no variability draws)."""
        w = np.asarray(state["weights"], dtype=np.float64)
        if w.shape != (self.n_choices,):
            raise ValueError(
                f"weight shape {w.shape} != ({self.n_choices},)")
        self.weights = w
        self._cdf = np.concatenate([[0.0], np.cumsum(self.weights)])
        self.selections = int(state["selections"])
        self._stage_rng.load_state(state["stage_rng"])

    # ------------------------------------------------------------------
    @property
    def cycles_per_selection(self) -> int:
        """Device cycles consumed per one-hot draw."""
        return self.n_stages

    def empirical_distribution(self, n: int = 4096) -> np.ndarray:
        """Monte-Carlo estimate of the realized selection distribution."""
        counts = np.bincount(self.select_many(n), minlength=self.n_choices)
        return counts / n
