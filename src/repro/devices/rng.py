"""Spintronic random number generation (the SpinDrop module).

Sec. III-A.1 describes the bitstream generator: "The process involved
generating a bitstream by alternating SET and RESET operations.
Following a 'SET' write operation, the MTJ's state was read using a
sense amplifier to verify the occurrence of the switch, effectively
indicating the dropout signal. Post-read operation, the MTJ was
'RESET' to the P-state."

:class:`SpintronicRNG` models a *bank* of such modules.  Each module
owns one MTJ whose thermal-stability realization is drawn from the
variability model, so the realized Bernoulli probability differs from
the programmed one device-to-device.  Every generated bit costs one
SET attempt, one read, and one RESET — the counts are tracked so the
energy model can price dropout subsystems exactly (this is where the
9× / 94.11× / >100× RNG-energy claims come from).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.devices.mtj import (
    MTJParams,
    current_for_probability,
    switching_probability,
)
from repro.devices.variability import DeviceVariability


class SpintronicRNG:
    """Bank of MTJ-based Bernoulli generators.

    Parameters
    ----------
    n_modules:
        Number of physical dropout modules in the bank.  A layer that
        needs more bits per pass than modules re-uses modules
        sequentially (extra latency, same hardware) — exactly the
        trade-off the paper discusses for SpinDrop vs Scale-Drop.
    p:
        Target (programmed) switching probability per SET attempt.
    variability:
        Device variability model; ``None`` yields ideal modules.
    """

    def __init__(self, n_modules: int, p: float = 0.5,
                 mtj_params: Optional[MTJParams] = None,
                 variability: Optional[DeviceVariability] = None,
                 rng: Optional[np.random.Generator] = None):
        if n_modules < 1:
            raise ValueError("need at least one module")
        if not 0.0 < p < 1.0:
            raise ValueError("probability must be in (0, 1)")
        self.n_modules = n_modules
        self.target_p = p
        self.mtj_params = mtj_params or MTJParams()
        self.variability = variability
        self.rng = rng or np.random.default_rng()

        # Per-module Δ realizations -> per-module effective probability.
        if variability is not None:
            self._deltas = variability.sample_deltas(
                self.mtj_params.delta, (n_modules,))
        else:
            self._deltas = np.full(n_modules, self.mtj_params.delta)
        self._current = current_for_probability(p, self.mtj_params)
        self.effective_p = np.asarray(switching_probability(
            self._current, self.mtj_params, delta=self._deltas))

        # Operation ledger for the energy model.
        self.set_ops = 0
        self.read_ops = 0
        self.reset_ops = 0

    # ------------------------------------------------------------------
    def generate(self, n_bits: int) -> np.ndarray:
        """Generate ``n_bits`` Bernoulli bits (1 = switched = "drop").

        Bits are produced round-robin across the module bank; each bit
        is one SET→read→RESET cycle on its module.
        """
        if n_bits == 1:
            # Fast path for single-bit draws (arbiter stages, scale
            # masks): module 0, one double off the stream — identical
            # bits to the general path, without the index arithmetic.
            probs = self.effective_p[:1]
        else:
            module_idx = np.arange(n_bits) % self.n_modules
            probs = self.effective_p[module_idx]
        bits = (self.rng.random(n_bits) < probs).astype(np.float64)
        self.set_ops += n_bits
        self.read_ops += n_bits
        self.reset_ops += n_bits
        return bits

    def generate_mask(self, shape: tuple) -> np.ndarray:
        """Generate a drop mask of the given shape (1 = drop)."""
        n = int(np.prod(shape))
        return self.generate(n).reshape(shape)

    def cycles_per_mask(self, mask_bits: int) -> int:
        """Sequential module re-use rounds needed for one mask."""
        return int(np.ceil(mask_bits / self.n_modules))

    # ------------------------------------------------------------------
    def calibrate(self, n_samples: int = 2000, tolerance: float = 0.02,
                  max_iters: int = 20) -> float:
        """Closed-loop current trim toward the target probability.

        Mirrors the hardware calibration loop: measure the empirical
        switch rate of the bank, nudge the write current, repeat.
        Returns the final empirical probability.  Calibration
        compensates the *mean* shift from variability but cannot remove
        the device-to-device spread (that residual spread is the
        Gaussian dropout-rate model of SpinScaleDrop).
        """
        current = self._current
        empirical = float(self.effective_p.mean())
        for _ in range(max_iters):
            probs = np.asarray(switching_probability(
                current, self.mtj_params, delta=self._deltas))
            idx = self.rng.integers(0, self.n_modules, size=n_samples)
            empirical = float((self.rng.random(n_samples) < probs[idx]).mean())
            error = empirical - self.target_p
            if abs(error) <= tolerance:
                self._current = current
                self.effective_p = probs
                return empirical
            # Gradient-free proportional trim in log-current space.
            current *= 1.0 - 0.5 * error
        self._current = current
        self.effective_p = np.asarray(switching_probability(
            current, self.mtj_params, delta=self._deltas))
        return empirical

    def fitted_probability(self) -> tuple[float, float]:
        """Gaussian (mu, sigma) of the per-module effective probability."""
        return float(self.effective_p.mean()), float(self.effective_p.std())

    def reset_counters(self) -> None:
        self.set_ops = self.read_ops = self.reset_ops = 0

    @property
    def total_ops(self) -> int:
        return self.set_ops + self.read_ops + self.reset_ops

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Capture the bank's device realization and cycle counters.

        The shared ``rng`` generator is *not* part of this state — it
        may be shared across many banks, so its bit-generator state is
        captured once by whoever owns the sharing topology (the
        deployment snapshot).
        """
        return {
            "n_modules": self.n_modules,
            "target_p": self.target_p,
            "deltas": self._deltas,
            "current": float(self._current),
            "effective_p": self.effective_p,
            "set_ops": self.set_ops,
            "read_ops": self.read_ops,
            "reset_ops": self.reset_ops,
        }

    def load_state(self, state: dict) -> None:
        """Install a captured device realization (no variability draws)."""
        self.n_modules = int(state["n_modules"])
        self.target_p = float(state["target_p"])
        self._deltas = np.asarray(state["deltas"], dtype=np.float64)
        self._current = float(state["current"])
        self.effective_p = np.asarray(state["effective_p"],
                                      dtype=np.float64)
        self.set_ops = int(state["set_ops"])
        self.read_ops = int(state["read_ops"])
        self.reset_ops = int(state["reset_ops"])
