"""Magnetic tunnel junction (MTJ) behavioural model.

The MTJ is the fundamental device of the paper (Sec. II-A): two
ferromagnetic layers separated by a tunnel barrier, with the relative
magnetization — Parallel (P, low resistance) or Anti-Parallel (AP,
high resistance) — storing one bit.  Two switching mechanisms exist:
Spin-Transfer Torque (STT, two-terminal) and Spin-Orbit Torque (SOT,
three-terminal with segregated read/write paths).

For the reproduction, the algorithms consume two device behaviours:

1. **Deterministic storage** — binary weights live in P/AP states with
   manufacturing variability on the conductances (handled in
   :mod:`repro.devices.variability`).
2. **Stochastic switching** — given a sub-critical write current pulse
   the device switches only with probability

   .. math::
      P_{sw}(I, t) = 1 - \\exp\\!\\big(-\\tfrac{t}{\\tau_0}
      \\exp(-\\Delta (1 - I/I_{c0}))\\big)

   the standard Néel–Brown / thermal-activation form used by the
   all-spin BayNN literature the paper builds on (refs [14, 15, 18]).
   This is the physical entropy source behind every SpinDrop /
   Scale-Drop / Arbiter RNG in the project.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Optional

import numpy as np


class MTJState(enum.IntEnum):
    """Stable states of the free layer (also the stored bit)."""

    PARALLEL = 0        # low resistance  -> logic 0 / weight -1 by convention
    ANTI_PARALLEL = 1   # high resistance -> logic 1 / weight +1


class SwitchingType(enum.Enum):
    """Write mechanism; affects energy constants and terminal count."""

    STT = "stt"
    SOT = "sot"


@dataclasses.dataclass(frozen=True)
class MTJParams:
    """Nominal device parameters.

    Defaults are representative perpendicular-MTJ values from the
    SOT/STT-MRAM literature (R_P a few kΩ, TMR ~150 %, Δ ~40 kT,
    critical current tens of µA, ns-scale attempt time).
    """

    r_p: float = 5e3                 # parallel resistance [ohm]
    tmr: float = 1.5                 # (R_AP - R_P) / R_P
    delta: float = 40.0              # thermal stability factor [kT]
    i_c0: float = 40e-6              # critical switching current [A]
    tau_0: float = 1e-9              # attempt time [s]
    pulse_width: float = 10e-9       # default write pulse width [s]
    read_voltage: float = 0.1        # read voltage [V]
    switching_type: SwitchingType = SwitchingType.SOT

    @property
    def r_ap(self) -> float:
        """Anti-parallel resistance [ohm]."""
        return self.r_p * (1.0 + self.tmr)

    @property
    def g_p(self) -> float:
        """Parallel conductance [S]."""
        return 1.0 / self.r_p

    @property
    def g_ap(self) -> float:
        """Anti-parallel conductance [S]."""
        return 1.0 / self.r_ap


def switching_probability(current: float | np.ndarray,
                          params: MTJParams,
                          pulse_width: Optional[float] = None,
                          delta: Optional[float | np.ndarray] = None
                          ) -> float | np.ndarray:
    """Probability the MTJ switches under a current pulse.

    Thermal-activation (Néel–Brown) model; monotonically increasing in
    both current and pulse width, saturating at 1 past the critical
    current.  Vectorized over ``current`` and ``delta`` so a whole
    bank of dropout modules can be evaluated at once.
    """
    t = params.pulse_width if pulse_width is None else pulse_width
    d = params.delta if delta is None else delta
    ratio = np.asarray(current, dtype=np.float64) / params.i_c0
    exponent = -d * (1.0 - np.minimum(ratio, 1.0))
    rate = (t / params.tau_0) * np.exp(exponent)
    prob = 1.0 - np.exp(-rate)
    return prob if isinstance(prob, np.ndarray) and prob.ndim else float(prob)


def current_for_probability(p_target: float, params: MTJParams,
                            pulse_width: Optional[float] = None,
                            delta: Optional[float] = None) -> float:
    """Invert :func:`switching_probability` for the write current.

    This is how a SpinDrop module is *programmed*: pick the CMOS-
    controlled current that makes the MTJ switch with the desired
    dropout probability (Sec. III-A.1: "To enable control over the
    current and, consequently, the probability of the MTJ, CMOS
    transistors were integrated with the MTJ").
    """
    if not 0.0 < p_target < 1.0:
        raise ValueError("target probability must be in (0, 1)")
    t = params.pulse_width if pulse_width is None else pulse_width
    d = params.delta if delta is None else delta
    # p = 1 - exp(-(t/tau0) e^{-d (1 - i)})  =>  solve for i = I/Ic0.
    rate = -math.log(1.0 - p_target)
    inner = rate * params.tau_0 / t
    i_ratio = 1.0 + math.log(inner) / d
    return i_ratio * params.i_c0


class MTJ:
    """A single stateful MTJ device.

    Tracks the free-layer state, applies stochastic switching on
    writes, and exposes resistance reads with optional thermal read
    noise.  Operation counts (set/reset/read) are recorded so the
    energy model can price a simulation run.
    """

    def __init__(self, params: Optional[MTJParams] = None,
                 state: MTJState = MTJState.PARALLEL,
                 rng: Optional[np.random.Generator] = None,
                 delta: Optional[float] = None,
                 r_p: Optional[float] = None):
        self.params = params or MTJParams()
        self.state = state
        self.rng = rng or np.random.default_rng()
        # Per-device realizations (variability may perturb them).
        self.delta = self.params.delta if delta is None else delta
        self.r_p = self.params.r_p if r_p is None else r_p
        self.reads = 0
        self.writes = 0

    @property
    def resistance(self) -> float:
        """Current resistance given the free-layer state."""
        if self.state == MTJState.PARALLEL:
            return self.r_p
        return self.r_p * (1.0 + self.params.tmr)

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance

    def read(self, noise_sigma: float = 0.0) -> float:
        """Read the resistance (optionally with multiplicative noise)."""
        self.reads += 1
        r = self.resistance
        if noise_sigma > 0.0:
            r *= 1.0 + self.rng.normal(0.0, noise_sigma)
        return r

    def write(self, target: MTJState, current: Optional[float] = None,
              pulse_width: Optional[float] = None) -> bool:
        """Attempt to switch toward ``target``; returns True on switch.

        With ``current=None`` the write is deterministic (a full-
        strength pulse, probability ≈ 1) — the normal weight-
        programming mode.  With a sub-critical ``current`` the switch
        is stochastic per the thermal-activation law — the RNG mode.
        """
        self.writes += 1
        if self.state == target:
            return True
        if current is None:
            self.state = target
            return True
        p = switching_probability(current, self.params,
                                  pulse_width=pulse_width, delta=self.delta)
        if self.rng.random() < p:
            self.state = target
            return True
        return False

    def set_stochastic(self, probability: float) -> bool:
        """One SET attempt tuned to the given switching probability.

        Uses the per-device ``delta`` realization, so manufacturing
        variability shifts the *effective* probability away from the
        programmed one — the behaviour SpinScaleDrop explicitly models
        with a Gaussian-fitted dropout rate (Sec. III-A.3).
        """
        current = current_for_probability(probability, self.params)
        return self.write(MTJState.ANTI_PARALLEL, current=current)

    def reset(self) -> None:
        """Deterministic RESET to the P state (full-strength pulse)."""
        self.writes += 1
        self.state = MTJState.PARALLEL
