"""Spintronic device substrate: MTJ physics, variability, defects, RNGs.

Everything above this package treats devices behaviourally; this
package is the single place where the physics lives (switching law,
P/AP conductances, thermal-stability spread, fault taxonomy).
"""

from repro.devices.mtj import (
    MTJ,
    MTJParams,
    MTJState,
    SwitchingType,
    current_for_probability,
    switching_probability,
)
from repro.devices.variability import (
    DeviceVariability,
    VariabilityParams,
    effective_dropout_probabilities,
    fit_gaussian,
)
from repro.devices.defects import (
    FAULT_NONE,
    FAULT_RETENTION,
    FAULT_STUCK_AP,
    FAULT_STUCK_P,
    FAULT_WRITE,
    DefectModel,
    DefectRates,
)
from repro.devices.rng import SpintronicRNG
from repro.devices.arbiter import SpintronicArbiter
from repro.devices.multilevel import MultiLevelCell

__all__ = [
    "MTJ",
    "MTJParams",
    "MTJState",
    "SwitchingType",
    "switching_probability",
    "current_for_probability",
    "DeviceVariability",
    "VariabilityParams",
    "effective_dropout_probabilities",
    "fit_gaussian",
    "DefectModel",
    "DefectRates",
    "FAULT_NONE",
    "FAULT_STUCK_P",
    "FAULT_STUCK_AP",
    "FAULT_WRITE",
    "FAULT_RETENTION",
    "SpintronicRNG",
    "SpintronicArbiter",
    "MultiLevelCell",
]
