"""Manufacturing defect and fault-injection models.

Key takeaway #4 of the paper: modelling device defaults/defects is
crucial for algorithm-hardware co-design.  The reproduction supports
the standard MRAM fault taxonomy used by the self-healing experiments
(Sec. III-A.4, "enhancing reliability ... at the edge"):

* **stuck-at-P / stuck-at-AP** — the free layer cannot switch; the
  stored bit is pinned to low/high conductance regardless of the
  programmed weight.
* **write failure** — a programming pulse silently fails, leaving the
  previous state (modelled as a per-cell Bernoulli at deploy time).
* **retention failure** — a thermally-activated spontaneous flip over
  the deployment lifetime.

Fault maps are materialized explicitly so an experiment can deploy the
*same* network with and without faults and measure the accuracy drop /
self-healing recovery.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np


@dataclasses.dataclass(frozen=True)
class DefectRates:
    """Per-cell probabilities of each fault class."""

    stuck_at_p: float = 0.0
    stuck_at_ap: float = 0.0
    write_failure: float = 0.0
    retention_failure: float = 0.0

    def total(self) -> float:
        return (self.stuck_at_p + self.stuck_at_ap
                + self.write_failure + self.retention_failure)


# Fault-map codes (int8 matrix parallel to the weight matrix).
FAULT_NONE = 0
FAULT_STUCK_P = 1
FAULT_STUCK_AP = 2
FAULT_WRITE = 3
FAULT_RETENTION = 4


class DefectModel:
    """Samples fault maps and applies them to binary weight matrices."""

    def __init__(self, rates: Optional[DefectRates] = None,
                 rng: Optional[np.random.Generator] = None):
        self.rates = rates or DefectRates()
        self.rng = rng or np.random.default_rng()
        if self.rates.total() > 1.0:
            raise ValueError("total defect probability exceeds 1")

    def sample_fault_map(self, shape: tuple) -> np.ndarray:
        """Draw an independent fault class per cell."""
        u = self.rng.random(shape)
        fault_map = np.full(shape, FAULT_NONE, dtype=np.int8)
        r = self.rates
        edges = np.cumsum([r.stuck_at_p, r.stuck_at_ap,
                           r.write_failure, r.retention_failure])
        fault_map[u < edges[0]] = FAULT_STUCK_P
        fault_map[(u >= edges[0]) & (u < edges[1])] = FAULT_STUCK_AP
        fault_map[(u >= edges[1]) & (u < edges[2])] = FAULT_WRITE
        fault_map[(u >= edges[2]) & (u < edges[3])] = FAULT_RETENTION
        return fault_map

    def apply_to_binary_weights(self, weights: np.ndarray,
                                fault_map: Optional[np.ndarray] = None
                                ) -> np.ndarray:
        """Corrupt a ±1 weight matrix according to a fault map.

        Conventions (bit encoding per :class:`repro.devices.mtj.MTJState`):
        P state stores −1, AP stores +1.  Stuck-at-P pins the cell to
        −1, stuck-at-AP to +1; write failure leaves a random previous
        state; retention failure flips the sign.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if not np.all(np.isin(weights, (-1.0, 1.0))):
            raise ValueError("apply_to_binary_weights expects ±1 weights")
        if fault_map is None:
            fault_map = self.sample_fault_map(weights.shape)
        out = weights.copy()
        out[fault_map == FAULT_STUCK_P] = -1.0
        out[fault_map == FAULT_STUCK_AP] = 1.0
        write_mask = fault_map == FAULT_WRITE
        if write_mask.any():
            random_prev = self.rng.choice([-1.0, 1.0], size=int(write_mask.sum()))
            out[write_mask] = random_prev
        retention_mask = fault_map == FAULT_RETENTION
        out[retention_mask] = -out[retention_mask]
        return out

    def apply_to_conductances(self, conductances: np.ndarray,
                              g_p: float, g_ap: float,
                              fault_map: Optional[np.ndarray] = None
                              ) -> np.ndarray:
        """Corrupt an analog conductance matrix (multi-level cells).

        Stuck faults pin to the extreme conductances; write failures
        re-draw a uniformly random level between them; retention flips
        toward the opposite extreme by one TMR gap.
        """
        if fault_map is None:
            fault_map = self.sample_fault_map(conductances.shape)
        out = np.asarray(conductances, dtype=np.float64).copy()
        out[fault_map == FAULT_STUCK_P] = g_p
        out[fault_map == FAULT_STUCK_AP] = g_ap
        write_mask = fault_map == FAULT_WRITE
        if write_mask.any():
            out[write_mask] = self.rng.uniform(
                min(g_p, g_ap), max(g_p, g_ap), size=int(write_mask.sum()))
        retention_mask = fault_map == FAULT_RETENTION
        out[retention_mask] = g_p + g_ap - out[retention_mask]
        return out

    def retention_flip_probability(self, time_seconds: float,
                                   delta: float = 40.0,
                                   tau_0: float = 1e-9) -> float:
        """Probability a stored bit flips within ``time_seconds``.

        Néel–Brown retention: the mean time to a thermally activated
        flip is ``tau_0 · exp(Δ)``, so
        P(flip by t) = 1 − exp(−t / (tau_0·e^Δ)).  With Δ = 40 the
        mean retention is ~7.5 years — individual weak devices
        (low-Δ tail of the variability distribution) dominate the
        observed failures.
        """
        if time_seconds < 0:
            raise ValueError("time must be non-negative")
        mean_retention = tau_0 * np.exp(delta)
        return float(1.0 - np.exp(-time_seconds / mean_retention))

    def age_binary_weights(self, weights: np.ndarray, time_seconds: float,
                           deltas: Optional[np.ndarray] = None,
                           tau_0: float = 1e-9) -> np.ndarray:
        """Apply retention aging to a deployed ±1 weight matrix.

        Each cell flips independently with its Néel–Brown probability;
        ``deltas`` supplies per-device thermal stability realizations
        (from :class:`~repro.devices.variability.DeviceVariability`),
        whose low tail produces the realistic early failures.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if not np.all(np.isin(weights, (-1.0, 1.0))):
            raise ValueError("age_binary_weights expects ±1 weights")
        if deltas is None:
            deltas = np.full(weights.shape, 40.0)
        deltas = np.asarray(deltas, dtype=np.float64)
        p_flip = 1.0 - np.exp(-time_seconds / (tau_0 * np.exp(deltas)))
        flips = self.rng.random(weights.shape) < p_flip
        out = weights.copy()
        out[flips] = -out[flips]
        return out

    def fault_statistics(self, fault_map: np.ndarray) -> dict:
        """Summarize a fault map (counts per class and overall rate)."""
        total = fault_map.size
        return {
            "stuck_at_p": int((fault_map == FAULT_STUCK_P).sum()),
            "stuck_at_ap": int((fault_map == FAULT_STUCK_AP).sum()),
            "write_failure": int((fault_map == FAULT_WRITE).sum()),
            "retention_failure": int((fault_map == FAULT_RETENTION).sum()),
            "fault_rate": float((fault_map != FAULT_NONE).sum() / total),
        }
