"""Manufacturing and in-field variability models.

Paper Sec. II-D and key takeaway #4: "Non-idealities like
manufacturing variations and defects, as well as stochastic behavior
of spintronic memories add layers of difficulties" — the reproduction
models them as:

* **Resistance spread** — lognormal multiplicative variation on the
  P-state resistance (device-to-device), plus a smaller cycle-to-cycle
  read fluctuation.
* **Thermal-stability spread** — normal variation on Δ, which shifts
  every stochastic-switching probability and therefore every dropout
  rate derived from an MTJ.
* **In-field drift** — a temperature coefficient scaling Δ and
  resistance, letting experiments sweep operating temperature.

All entry points are vectorized: they take/return numpy arrays so a
whole crossbar or RNG bank is perturbed in one call.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.devices.mtj import MTJParams


@dataclasses.dataclass(frozen=True)
class VariabilityParams:
    """Spread magnitudes (all relative / dimensionless).

    ``sigma_r``: lognormal sigma of device-to-device resistance.
    ``sigma_delta``: relative std-dev of the thermal stability factor.
    ``sigma_read``: multiplicative cycle-to-cycle read noise.
    ``temp_coeff_delta``: fractional Δ change per kelvin away from 300 K
    (Δ drops as temperature rises — switching gets more stochastic).
    """

    sigma_r: float = 0.05
    sigma_delta: float = 0.05
    sigma_read: float = 0.01
    temp_coeff_delta: float = -0.002
    reference_temp: float = 300.0


class DeviceVariability:
    """Sampler for per-device parameter realizations."""

    def __init__(self, params: Optional[VariabilityParams] = None,
                 rng: Optional[np.random.Generator] = None,
                 temperature: float = 300.0):
        self.params = params or VariabilityParams()
        self.rng = rng or np.random.default_rng()
        self.temperature = temperature

    # ------------------------------------------------------------------
    def _temp_factor(self) -> float:
        dt = self.temperature - self.params.reference_temp
        return max(1.0 + self.params.temp_coeff_delta * dt, 0.1)

    def sample_resistances(self, nominal_r: float, shape: tuple) -> np.ndarray:
        """Device-to-device P-state resistances (lognormal around nominal)."""
        if self.params.sigma_r <= 0.0:
            return np.full(shape, nominal_r)
        return nominal_r * self.rng.lognormal(
            mean=0.0, sigma=self.params.sigma_r, size=shape)

    def sample_deltas(self, nominal_delta: float, shape: tuple) -> np.ndarray:
        """Per-device thermal stability factors, temperature-adjusted."""
        base = nominal_delta * self._temp_factor()
        if self.params.sigma_delta <= 0.0:
            return np.full(shape, base)
        deltas = self.rng.normal(base, self.params.sigma_delta * base, size=shape)
        return np.maximum(deltas, 1.0)

    def perturb_conductances(self, conductances: np.ndarray) -> np.ndarray:
        """Apply device-to-device spread to a programmed conductance matrix.

        Used when deploying weights to a crossbar: the programmed G
        values land on real devices whose resistance differs from
        nominal.
        """
        if self.params.sigma_r <= 0.0:
            return conductances.copy()
        spread = self.rng.lognormal(
            mean=0.0, sigma=self.params.sigma_r, size=conductances.shape)
        # Resistance is lognormal, conductance is its reciprocal —
        # reciprocal of lognormal is lognormal with negated mean.
        return conductances / spread

    def read_noise(self, values: np.ndarray) -> np.ndarray:
        """Cycle-to-cycle multiplicative read fluctuation."""
        if self.params.sigma_read <= 0.0:
            return values
        noise = self.rng.normal(1.0, self.params.sigma_read, size=values.shape)
        return values * noise


def effective_dropout_probabilities(
        target_p: float, mtj_params: MTJParams,
        variability: DeviceVariability, n_modules: int) -> np.ndarray:
    """Per-module realized dropout probabilities for a bank of RNG modules.

    Programs every module's write current for ``target_p`` using the
    *nominal* Δ, then evaluates the switching law at each module's
    *actual* Δ realization.  The returned spread is what SpinScaleDrop
    fits with a Gaussian ("the dropout probability is defined as a
    stochastic variable, and ... fitted to a Gaussian distribution",
    Sec. III-A.3).
    """
    from repro.devices.mtj import current_for_probability, switching_probability

    current = current_for_probability(target_p, mtj_params)
    deltas = variability.sample_deltas(mtj_params.delta, (n_modules,))
    return np.asarray(switching_probability(current, mtj_params, delta=deltas))


def fit_gaussian(probabilities: np.ndarray) -> tuple[float, float]:
    """Gaussian (mu, sigma) fit of realized dropout probabilities."""
    probs = np.asarray(probabilities, dtype=np.float64)
    return float(probs.mean()), float(probs.std())
